// The typed batched shuffle lane: POD records, one coalescing wake, ack /
// timeout pairing and accounting identical to the closure path's
// sendWithAck semantics, and quantized batch delivery.
#include "net/shuffle_channel.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "net/latency.hpp"

namespace avmem::net {
namespace {

/// Records every delivery; answers requests with a fixed payload.
class RecordingSink : public ShuffleSink {
 public:
  struct Request {
    NodeIndex dst, src;
    std::vector<NodeIndex> offered;
  };
  struct Reply {
    NodeIndex dst, src;
    std::vector<NodeIndex> reply;
    std::vector<NodeIndex> echo;
  };

  explicit RecordingSink(sim::Simulator& sim) : sim_(sim) {}

  void onShuffleBatch(std::span<const ShuffleDelivery> batch,
                      std::vector<ShuffleRequestOutcome>& outcomes) override {
    ++batchCalls;
    batchTimes.push_back(sim_.now());
    for (const ShuffleDelivery& d : batch) {
      switch (d.kind) {
        case ShuffleMsg::Kind::kRequest:
          requests.push_back(
              {d.node, d.peer, {d.payload.begin(), d.payload.end()}});
          outcomes.push_back(
              {accept, {replyPayload.data(), replyPayload.size()}});
          break;
        case ShuffleMsg::Kind::kReply:
          replies.push_back({d.node,
                             d.peer,
                             {d.payload.begin(), d.payload.end()},
                             {d.echo.begin(), d.echo.end()}});
          break;
        case ShuffleMsg::Kind::kTimeout:
          timeouts.emplace_back(d.node, d.peer);
          break;
        case ShuffleMsg::Kind::kAck:
          ADD_FAILURE() << "acks settle inside the channel";
          break;
      }
    }
  }

  sim::Simulator& sim_;
  bool accept = true;
  std::vector<NodeIndex> replyPayload = {7, 9};
  std::size_t batchCalls = 0;
  std::vector<sim::SimTime> batchTimes;
  std::vector<Request> requests;
  std::vector<Reply> replies;
  std::vector<std::pair<NodeIndex, NodeIndex>> timeouts;
};

class ShuffleChannelTest : public ::testing::Test {
 protected:
  /// Constant per-hop latency + ack timeout (ms); optional delivery grid.
  void build(std::int64_t latencyMs, std::int64_t timeoutMs,
             std::int64_t quantumMs = 0) {
    sink_ = std::make_unique<RecordingSink>(sim_);
    network_ = std::make_unique<Network>(
        sim_, [this](NodeIndex n) { return online_.contains(n); },
        std::make_unique<ConstantLatency>(sim::SimDuration::millis(latencyMs)),
        sim::Rng(1));
    channel_ = std::make_unique<ShuffleChannel>(
        sim_, *network_, *sink_, sim::SimDuration::millis(timeoutMs),
        sim::SimDuration::millis(quantumMs), sim::Rng(2));
  }

  sim::Simulator sim_;
  std::set<NodeIndex> online_ = {0, 1, 2, 3};
  std::unique_ptr<RecordingSink> sink_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<ShuffleChannel> channel_;
};

TEST_F(ShuffleChannelTest, RequestReplyAckRoundTrip) {
  build(/*latencyMs=*/50, /*timeoutMs=*/300);
  const std::vector<NodeIndex> offered = {2, 3, 0};
  channel_->sendRequest(0, 1, offered);
  sim_.runAll();

  // Request reached node 1 with the payload intact.
  ASSERT_EQ(sink_->requests.size(), 1u);
  EXPECT_EQ(sink_->requests[0].dst, 1u);
  EXPECT_EQ(sink_->requests[0].src, 0u);
  EXPECT_EQ(sink_->requests[0].offered, offered);

  // Reply came back to node 0 carrying the sink's payload plus the echo
  // of what node 0 originally offered.
  ASSERT_EQ(sink_->replies.size(), 1u);
  EXPECT_EQ(sink_->replies[0].dst, 0u);
  EXPECT_EQ(sink_->replies[0].src, 1u);
  EXPECT_EQ(sink_->replies[0].reply, sink_->replyPayload);
  EXPECT_EQ(sink_->replies[0].echo, offered);

  // Ack won the race; the timeout never fired.
  EXPECT_TRUE(sink_->timeouts.empty());
  const NetworkStats& s = network_->stats();
  EXPECT_EQ(s.sent, 2u);  // request + reply
  EXPECT_EQ(s.delivered, 2u);
  EXPECT_EQ(s.acksSent, 1u);
  EXPECT_EQ(s.ackTimeouts, 0u);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(s.droppedOffline, 0u);
  // 3 request entries + 2 reply entries at 20 B each, + one 16 B ack.
  EXPECT_EQ(s.bytesSent, 5 * Network::kMembershipEntryBytes +
                             Network::kAckBytes);

  // The queue drained fully and reclaimed its arena.
  EXPECT_EQ(channel_->pendingMessages(), 0u);
  EXPECT_EQ(channel_->arenaEntries(), 0u);
  EXPECT_EQ(channel_->liveArenaEntries(), 0u);
}

TEST_F(ShuffleChannelTest, OfflinePartnerDropsAndTimesOut) {
  build(50, 300);
  online_.erase(1);
  channel_->sendRequest(0, 1, std::vector<NodeIndex>{2});
  sim_.runAll();

  EXPECT_TRUE(sink_->requests.empty());
  EXPECT_TRUE(sink_->replies.empty());
  ASSERT_EQ(sink_->timeouts.size(), 1u);
  EXPECT_EQ(sink_->timeouts[0], std::make_pair(NodeIndex{0}, NodeIndex{1}));
  EXPECT_EQ(network_->stats().droppedOffline, 1u);
  EXPECT_EQ(network_->stats().ackTimeouts, 1u);
  EXPECT_EQ(network_->stats().acksSent, 0u);
}

TEST_F(ShuffleChannelTest, RejectionCountsRejectedAndTimesOut) {
  build(50, 300);
  sink_->accept = false;
  channel_->sendRequest(0, 1, std::vector<NodeIndex>{2});
  sim_.runAll();

  // The request was delivered (and counted so), but the receiver said no:
  // no reply, no ack, the initiator's timeout fires, and the new rejected
  // counter separates this from an offline drop.
  ASSERT_EQ(sink_->requests.size(), 1u);
  EXPECT_TRUE(sink_->replies.empty());
  EXPECT_EQ(sink_->timeouts.size(), 1u);
  const NetworkStats& s = network_->stats();
  EXPECT_EQ(s.delivered, 1u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.droppedOffline, 0u);
  EXPECT_EQ(s.acksSent, 0u);
  EXPECT_EQ(s.ackTimeouts, 1u);
}

TEST_F(ShuffleChannelTest, LateReplyStillDeliversAfterTimeout) {
  // 200 ms per hop, 300 ms timeout: the request lands at 200, the ack
  // would land at 400 — the timeout fires first. The reply must still be
  // delivered at 400 (independent datagram), exactly like the closure
  // path's separate reply datagram.
  build(/*latencyMs=*/200, /*timeoutMs=*/300);
  channel_->sendRequest(0, 1, std::vector<NodeIndex>{2, 0});
  sim_.runAll();

  EXPECT_EQ(sink_->timeouts.size(), 1u);
  EXPECT_EQ(network_->stats().ackTimeouts, 1u);
  ASSERT_EQ(sink_->replies.size(), 1u);  // late reply merged anyway
  EXPECT_EQ(sink_->replies[0].dst, 0u);
  EXPECT_EQ(network_->stats().delivered, 2u);
}

TEST_F(ShuffleChannelTest, AckTimeoutTieResolvesToTimeout) {
  // 150 ms per hop: ack lands exactly at the 300 ms deadline. The timeout
  // record was pushed first, so FIFO order at equal due times lets it win
  // — matching sendWithAck, where the timeout event is scheduled at send
  // time and ties are broken by scheduling order.
  build(/*latencyMs=*/150, /*timeoutMs=*/300);
  channel_->sendRequest(0, 1, std::vector<NodeIndex>{2});
  sim_.runAll();

  EXPECT_EQ(sink_->timeouts.size(), 1u);
  EXPECT_EQ(network_->stats().ackTimeouts, 1u);
  EXPECT_EQ(sink_->replies.size(), 1u);
}

TEST_F(ShuffleChannelTest, BatchedRequestsCoalesceAndStayFifo) {
  build(50, 300);
  // A commit pass enqueues a burst; every leg lands at the same instant,
  // so the sink sees ONE batch, in enqueue (FIFO) order.
  for (NodeIndex src = 0; src < 3; ++src) {
    channel_->sendRequest(src, static_cast<NodeIndex>((src + 1) % 4),
                          std::vector<NodeIndex>{src});
  }
  sim_.runAll();
  ASSERT_EQ(sink_->requests.size(), 3u);
  EXPECT_EQ(sink_->requests[0].src, 0u);
  EXPECT_EQ(sink_->requests[1].src, 1u);
  EXPECT_EQ(sink_->requests[2].src, 2u);
  EXPECT_EQ(sink_->batchTimes.front(), sim::SimTime::millis(50));
  EXPECT_EQ(network_->stats().acksSent, 3u);
  EXPECT_EQ(channel_->pendingMessages(), 0u);
}

TEST_F(ShuffleChannelTest, QuantizationRoundsDeliveryUpOntoTheGrid) {
  // 50 ms latency on a 20 ms grid: the request lands at 60, the reply
  // (sent at 60, landing raw at 110) at 120. Batches form on grid lines.
  build(/*latencyMs=*/50, /*timeoutMs=*/300, /*quantumMs=*/20);
  channel_->sendRequest(0, 1, std::vector<NodeIndex>{2});
  sim_.runAll();

  ASSERT_EQ(sink_->batchTimes.size(), 2u);
  EXPECT_EQ(sink_->batchTimes[0], sim::SimTime::millis(60));
  EXPECT_EQ(sink_->batchTimes[1], sim::SimTime::millis(120));
  ASSERT_EQ(sink_->requests.size(), 1u);
  ASSERT_EQ(sink_->replies.size(), 1u);
  EXPECT_TRUE(sink_->timeouts.empty());  // ack at 180 beats the 300 deadline
}

TEST_F(ShuffleChannelTest, QuantizedTieResolvesByTrueArrivalTime) {
  // Quantization lands records on shared grid lines, but the race is
  // still decided on the exact timeline: 30 ms hops on a 20 ms grid put
  // the request at 40 (raw 30) and the ack at raw 70, grid 80.
  {
    // Deadline 65 ms quantizes to 80 too — a tie. The ack truly arrived
    // at 70, after the true 65 ms deadline: the timeout must win.
    build(/*latencyMs=*/30, /*timeoutMs=*/65, /*quantumMs=*/20);
    channel_->sendRequest(0, 1, std::vector<NodeIndex>{2});
    sim_.runAll();
    EXPECT_EQ(sink_->timeouts.size(), 1u);
    EXPECT_EQ(network_->stats().ackTimeouts, 1u);
  }
  {
    // Deadline 75 ms also quantizes to 80 — but now the ack (raw 70)
    // truly beat it, so it must settle the exchange despite the grid tie.
    build(/*latencyMs=*/30, /*timeoutMs=*/75, /*quantumMs=*/20);
    channel_->sendRequest(0, 1, std::vector<NodeIndex>{2});
    sim_.runAll();
    EXPECT_TRUE(sink_->timeouts.empty());
    EXPECT_EQ(network_->stats().ackTimeouts, 0u);
  }
}

TEST_F(ShuffleChannelTest, WireRecordStaysPod) {
  // The whole point of the batched path: in-flight messages are plain
  // data, not closures.
  static_assert(std::is_trivially_copyable_v<ShuffleMsg>);
  static_assert(std::is_trivially_destructible_v<ShuffleMsg>);
  SUCCEED();
}

}  // namespace
}  // namespace avmem::net
