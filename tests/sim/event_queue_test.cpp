#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace avmem::sim {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(SimTime::seconds(3), [&] { fired.push_back(3); });
  q.schedule(SimTime::seconds(1), [&] { fired.push_back(1); });
  q.schedule(SimTime::seconds(2), [&] { fired.push_back(2); });

  SimTime at;
  EventQueue::Callback fn;
  while (q.popNext(at, fn)) fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, StableFifoAtEqualTimes) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime::seconds(5), [&fired, i] { fired.push_back(i); });
  }
  SimTime at;
  EventQueue::Callback fn;
  while (q.popNext(at, fn)) fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueueTest, CancelSuppressesEvent) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule(SimTime::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());

  SimTime at;
  EventQueue::Callback fn;
  EXPECT_FALSE(q.popNext(at, fn));  // cancelled event is skipped
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelAfterFireIsNoop) {
  EventQueue q;
  EventHandle h = q.schedule(SimTime::seconds(1), [] {});
  SimTime at;
  EventQueue::Callback fn;
  ASSERT_TRUE(q.popNext(at, fn));
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or corrupt anything
  EXPECT_FALSE(q.popNext(at, fn));
}

TEST(EventQueueTest, NextTimeAndSize) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.schedule(SimTime::seconds(9), [] {});
  q.schedule(SimTime::seconds(4), [] {});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.nextTime(), SimTime::seconds(4));
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op
}

}  // namespace
}  // namespace avmem::sim
