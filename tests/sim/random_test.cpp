#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace avmem::sim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 7.0);
  }
}

TEST(RngTest, BelowIsUnbiased) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(10)];
  for (const int c : counts) EXPECT_NEAR(c, kDraws / 10, 500);
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(10);
  double sum = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kDraws, 4.0, 0.1);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(11);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 10u);
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng root(42);
  Rng a1 = root.fork("alpha", 1);
  Rng a2 = root.fork("alpha", 1);
  EXPECT_EQ(a1.next(), a2.next());  // same fork -> same stream

  Rng b = root.fork("alpha", 2);
  Rng c = root.fork("beta", 1);
  // Distinct labels/indices diverge.
  EXPECT_NE(a1.next(), b.next());
  EXPECT_NE(b.next(), c.next());
}

TEST(RngTest, ForkDoesNotPerturbParent) {
  Rng a(42);
  Rng b(42);
  (void)a.fork("anything");
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMixTest, KnownSequenceIsStable) {
  // Regression guard: seeding must not silently change across refactors
  // (it would invalidate all recorded experiment outputs).
  std::uint64_t s = 0;
  const std::uint64_t first = splitMix64(s);
  const std::uint64_t second = splitMix64(s);
  EXPECT_EQ(first, 0xE220A8397B1DCDAFull);
  EXPECT_EQ(second, 0x6E789E6AA1B965F4ull);
}

}  // namespace
}  // namespace avmem::sim
