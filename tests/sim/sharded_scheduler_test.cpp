// The sharded maintenance timing wheel: per-member cadence with O(shards)
// queue pressure.
#include "sim/sharded_scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

namespace avmem::sim {
namespace {

TEST(ShardedSchedulerTest, EachMemberFiresOncePerPeriod) {
  Simulator sim;
  ShardedScheduler sched;
  constexpr std::size_t kMembers = 10;
  std::vector<int> fired(kMembers, 0);
  sched.start(sim, SimDuration::seconds(1), 4, kMembers, Rng(7),
              [&fired](std::uint32_t m) { ++fired[m]; });
  // Offsets lie in [0, period), so over [0, 5s) every member fires
  // exactly five times.
  sim.runUntil(SimTime::seconds(5) - SimDuration::micros(1));
  for (std::size_t m = 0; m < kMembers; ++m) {
    EXPECT_EQ(fired[m], 5) << "member " << m;
  }
}

TEST(ShardedSchedulerTest, QueuePressureIsShardsNotMembers) {
  Simulator sim;
  ShardedScheduler sched;
  sched.start(sim, SimDuration::minutes(1), 16, 10'000, Rng(3),
              [](std::uint32_t) {});
  EXPECT_LE(sched.activeShardCount(), 16u);
  // One pending heap entry per populated slot — not per member.
  EXPECT_EQ(sim.pendingEvents(), sched.activeShardCount());
}

TEST(ShardedSchedulerTest, AutoShardCountIsPerMemberUpToCap) {
  EXPECT_EQ(ShardedScheduler::autoShardCount(1), 1u);
  EXPECT_EQ(ShardedScheduler::autoShardCount(10), 10u);
  EXPECT_EQ(ShardedScheduler::autoShardCount(256), 256u);
  EXPECT_EQ(ShardedScheduler::autoShardCount(1'000'000),
            ShardedScheduler::kMaxAutoShards);
}

TEST(ShardedSchedulerTest, ShardCountClampsToMembers) {
  // An explicit shardCount above the member count is clamped to
  // memberCount (extra slots could only sit empty); shardCount() reports
  // the effective post-clamp value, so queue-pressure accounting built on
  // it stays honest.
  Simulator sim;
  ShardedScheduler sched;
  sched.start(sim, SimDuration::seconds(1), 64, 8, Rng(5),
              [](std::uint32_t) {});
  EXPECT_EQ(sched.shardCount(), 8u);
  EXPECT_LE(sched.activeShardCount(), sched.shardCount());
  EXPECT_EQ(sched.memberCount(), 8u);

  // At or below the member count the explicit request is honored exactly.
  sched.start(sim, SimDuration::seconds(1), 8, 8, Rng(5),
              [](std::uint32_t) {});
  EXPECT_EQ(sched.shardCount(), 8u);
  sched.start(sim, SimDuration::seconds(1), 3, 8, Rng(5),
              [](std::uint32_t) {});
  EXPECT_EQ(sched.shardCount(), 3u);
}

TEST(ShardedSchedulerTest, DeterministicFiringSequence) {
  auto record = [] {
    Simulator sim;
    ShardedScheduler sched;
    std::vector<std::pair<std::int64_t, std::uint32_t>> seq;
    sched.start(sim, SimDuration::seconds(2), 0, 50, Rng(42),
                [&seq, &sim](std::uint32_t m) {
                  seq.emplace_back(sim.now().toMicros(), m);
                });
    sim.runUntil(SimTime::seconds(10));
    return seq;
  };
  EXPECT_EQ(record(), record());
}

TEST(ShardedSchedulerTest, StopCancelsAllTimers) {
  Simulator sim;
  ShardedScheduler sched;
  int fired = 0;
  sched.start(sim, SimDuration::seconds(1), 4, 20, Rng(9),
              [&fired](std::uint32_t) { ++fired; });
  sim.runUntil(SimTime::seconds(3));
  const int before = fired;
  EXPECT_GT(before, 0);
  sched.stop();
  EXPECT_FALSE(sched.running());
  sim.runUntil(SimTime::seconds(10));
  EXPECT_EQ(fired, before);
}

// Record the full (time, phase, member, lane) sequence of a barrier-mode
// schedule driven by a pool of `threads` lanes. Plans write to a
// lane-indexed buffer (the plan-phase contract); commits append to the
// shared sequence serially.
std::vector<std::tuple<std::int64_t, char, std::uint32_t, std::size_t>>
recordParallel(std::size_t threads) {
  Simulator sim;
  WorkerPool pool(threads);
  ShardedScheduler sched;
  std::vector<std::uint64_t> lanes(64, 0);
  std::vector<std::tuple<std::int64_t, char, std::uint32_t, std::size_t>> seq;
  sched.startParallel(
      sim, SimDuration::seconds(2), 6, 40, Rng(11), &pool,
      [&lanes](std::uint32_t m, std::size_t lane) {
        lanes[lane] = Rng::stream(5, m, 0).next();  // plan: lane-local only
      },
      [&](std::uint32_t m, std::size_t lane) {
        seq.emplace_back(sim.now().toMicros(), 'c', m, lane);
        ASSERT_EQ(lanes[lane], Rng::stream(5, m, 0).next());
      });
  sim.runUntil(SimTime::seconds(10));
  return seq;
}

TEST(ShardedSchedulerTest, BarrierModeMatchesAnyThreadCount) {
  const auto serial = recordParallel(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(recordParallel(2), serial);
  EXPECT_EQ(recordParallel(8), serial);
}

TEST(ShardedSchedulerTest, BarrierModeFiringScheduleMatchesSerialMode) {
  // Same period/shards/jitter: the slot assignment and firing times are
  // identical whether the slot body is the serial MemberFn or plan/commit.
  auto recordSerial = [] {
    Simulator sim;
    ShardedScheduler sched;
    std::vector<std::pair<std::int64_t, std::uint32_t>> seq;
    sched.start(sim, SimDuration::seconds(2), 6, 40, Rng(11),
                [&seq, &sim](std::uint32_t m) {
                  seq.emplace_back(sim.now().toMicros(), m);
                });
    sim.runUntil(SimTime::seconds(10));
    return seq;
  };
  const auto serial = recordSerial();
  const auto parallel = recordParallel(4);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(std::get<0>(parallel[i]), serial[i].first);
    EXPECT_EQ(std::get<2>(parallel[i]), serial[i].second);
  }
}

TEST(ShardedSchedulerTest, MaxSlotPopulationBoundsLaneBuffers) {
  Simulator sim;
  ShardedScheduler sched;
  std::size_t maxLane = 0;
  sched.startParallel(
      sim, SimDuration::seconds(1), 4, 100, Rng(3), nullptr,
      [](std::uint32_t, std::size_t) {},
      [&maxLane](std::uint32_t, std::size_t lane) {
        maxLane = std::max(maxLane, lane);
      });
  EXPECT_GE(sched.maxSlotPopulation(), 1u);
  sim.runUntil(SimTime::seconds(1));
  EXPECT_LT(maxLane, sched.maxSlotPopulation());
}

// Record the (time, member) commit sequence of a plan/commit schedule with
// pipelined dispatch on or off. The plan writes a member-derived value to
// its lane; the commit checks it and poisons the lane, so a speculation
// that aliased the committing lane set, or an accepted speculation whose
// lanes were never planned, fails loudly.
std::vector<std::pair<std::int64_t, std::uint32_t>> recordPipelined(
    std::size_t threads, bool pipelined) {
  Simulator sim;
  WorkerPool pool(threads);
  ShardedScheduler sched;
  PipelineOptions pipe;
  pipe.enabled = pipelined;
  std::vector<std::uint64_t> lanes;
  std::vector<std::pair<std::int64_t, std::uint32_t>> seq;
  sched.startParallel(
      sim, SimDuration::seconds(2), 6, 40, Rng(11), &pool,
      [&lanes](std::uint32_t m, std::size_t lane) {
        lanes[lane] = Rng::stream(5, m, 0).next();
      },
      [&](std::uint32_t m, std::size_t lane) {
        EXPECT_EQ(lanes[lane], Rng::stream(5, m, 0).next());
        lanes[lane] = 0xDEADDEADDEADDEADull;  // poison: reuse must re-plan
        seq.emplace_back(sim.now().toMicros(), m);
      },
      pipe);
  lanes.assign(sched.laneSpan(), 0);
  sim.runUntil(SimTime::seconds(10));
  if (pipelined) {
    // This wheel has several populated slots and no foreign events, so
    // speculation must actually engage.
    EXPECT_GT(sched.pipelinedFirings(), 0u);
  } else {
    EXPECT_EQ(sched.pipelinedFirings(), 0u);
  }
  return seq;
}

TEST(ShardedSchedulerTest, PipelinedModeMatchesBarrierModeAnyThreadCount) {
  const auto barrier = recordPipelined(1, false);
  ASSERT_FALSE(barrier.empty());
  EXPECT_EQ(recordPipelined(1, true), barrier);   // inline speculation
  EXPECT_EQ(recordPipelined(2, true), barrier);   // async speculation
  EXPECT_EQ(recordPipelined(8, true), barrier);
}

TEST(ShardedSchedulerTest, PipelinedSpeculationAlternatesLaneSets) {
  Simulator sim;
  ShardedScheduler sched;
  PipelineOptions pipe;
  pipe.enabled = true;
  std::vector<std::size_t> commitLanes;
  sched.startParallel(
      sim, SimDuration::seconds(1), 8, 8, Rng(3), nullptr,
      [](std::uint32_t, std::size_t) {},
      [&commitLanes](std::uint32_t, std::size_t lane) {
        commitLanes.push_back(lane);
      },
      pipe);
  // Pipelined mode doubles the lane-buffer requirement (A/B sets).
  EXPECT_EQ(sched.laneSpan(), 2 * sched.maxSlotPopulation());
  sim.runUntil(SimTime::seconds(4));
  EXPECT_GT(sched.pipelinedFirings(), 0u);
  // Accepted speculations commit out of the opposite half of the lane
  // space, so both halves must appear in the commit lane stream.
  bool low = false;
  bool high = false;
  for (const std::size_t lane : commitLanes) {
    (lane < sched.maxSlotPopulation() ? low : high) = true;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

TEST(ShardedSchedulerTest, CommitScheduledEventDiscardsSpeculation) {
  // A commit that schedules an event due before the next slot's timer
  // (the shuffle wheel does exactly this) must invalidate the in-flight
  // speculation: the accept fence counts the intervening event and the
  // slot replans at its own barrier, keeping results exact.
  Simulator sim;
  ShardedScheduler sched;
  PipelineOptions pipe;
  pipe.enabled = true;
  std::vector<std::uint64_t> lanes;
  sched.startParallel(
      sim, SimDuration::seconds(2), 6, 40, Rng(11), nullptr,
      [&lanes](std::uint32_t m, std::size_t lane) {
        lanes[lane] = Rng::stream(5, m, 0).next();
      },
      [&](std::uint32_t m, std::size_t lane) {
        EXPECT_EQ(lanes[lane], Rng::stream(5, m, 0).next());
        lanes[lane] = 0xDEADDEADDEADDEADull;
        sim.schedule(SimDuration::micros(1), [] {});
      },
      pipe);
  lanes.assign(sched.laneSpan(), 0);
  sim.runUntil(SimTime::seconds(10));
  EXPECT_GT(sched.discardedSpeculations(), 0u);
  EXPECT_EQ(sched.pipelinedFirings(), 0u);
  EXPECT_GT(sched.barrierFirings(), 0u);
}

TEST(ShardedSchedulerTest, UnstableSnapshotFallsBackToBarrier) {
  Simulator sim;
  ShardedScheduler sched;
  PipelineOptions pipe;
  pipe.enabled = true;
  pipe.snapshotStable = [](SimTime, SimTime) { return false; };
  int commits = 0;
  sched.startParallel(
      sim, SimDuration::seconds(1), 8, 16, Rng(7), nullptr,
      [](std::uint32_t, std::size_t) {},
      [&commits](std::uint32_t, std::size_t) { ++commits; },
      pipe);
  sim.runUntil(SimTime::seconds(5));
  EXPECT_GT(commits, 0);
  // Nothing is ever launched, so nothing can be discarded either.
  EXPECT_EQ(sched.pipelinedFirings(), 0u);
  EXPECT_EQ(sched.discardedSpeculations(), 0u);
  EXPECT_GT(sched.barrierFirings(), 0u);
}

TEST(ShardedSchedulerTest, EmptyPopulationSchedulesNothing) {
  Simulator sim;
  ShardedScheduler sched;
  sched.start(sim, SimDuration::seconds(1), 4, 0, Rng(1),
              [](std::uint32_t) { FAIL() << "no member should fire"; });
  EXPECT_FALSE(sched.running());
  EXPECT_EQ(sim.pendingEvents(), 0u);
  sim.runUntil(SimTime::seconds(5));
}

}  // namespace
}  // namespace avmem::sim
