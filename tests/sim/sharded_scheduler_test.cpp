// The sharded maintenance timing wheel: per-member cadence with O(shards)
// queue pressure.
#include "sim/sharded_scheduler.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace avmem::sim {
namespace {

TEST(ShardedSchedulerTest, EachMemberFiresOncePerPeriod) {
  Simulator sim;
  ShardedScheduler sched;
  constexpr std::size_t kMembers = 10;
  std::vector<int> fired(kMembers, 0);
  sched.start(sim, SimDuration::seconds(1), 4, kMembers, Rng(7),
              [&fired](std::uint32_t m) { ++fired[m]; });
  // Offsets lie in [0, period), so over [0, 5s) every member fires
  // exactly five times.
  sim.runUntil(SimTime::seconds(5) - SimDuration::micros(1));
  for (std::size_t m = 0; m < kMembers; ++m) {
    EXPECT_EQ(fired[m], 5) << "member " << m;
  }
}

TEST(ShardedSchedulerTest, QueuePressureIsShardsNotMembers) {
  Simulator sim;
  ShardedScheduler sched;
  sched.start(sim, SimDuration::minutes(1), 16, 10'000, Rng(3),
              [](std::uint32_t) {});
  EXPECT_LE(sched.activeShardCount(), 16u);
  // One pending heap entry per populated slot — not per member.
  EXPECT_EQ(sim.pendingEvents(), sched.activeShardCount());
}

TEST(ShardedSchedulerTest, AutoShardCountIsPerMemberUpToCap) {
  EXPECT_EQ(ShardedScheduler::autoShardCount(1), 1u);
  EXPECT_EQ(ShardedScheduler::autoShardCount(10), 10u);
  EXPECT_EQ(ShardedScheduler::autoShardCount(256), 256u);
  EXPECT_EQ(ShardedScheduler::autoShardCount(1'000'000),
            ShardedScheduler::kMaxAutoShards);
}

TEST(ShardedSchedulerTest, ShardCountClampsToMembers) {
  Simulator sim;
  ShardedScheduler sched;
  sched.start(sim, SimDuration::seconds(1), 64, 8, Rng(5),
              [](std::uint32_t) {});
  EXPECT_LE(sched.shardCount(), 8u);
}

TEST(ShardedSchedulerTest, DeterministicFiringSequence) {
  auto record = [] {
    Simulator sim;
    ShardedScheduler sched;
    std::vector<std::pair<std::int64_t, std::uint32_t>> seq;
    sched.start(sim, SimDuration::seconds(2), 0, 50, Rng(42),
                [&seq, &sim](std::uint32_t m) {
                  seq.emplace_back(sim.now().toMicros(), m);
                });
    sim.runUntil(SimTime::seconds(10));
    return seq;
  };
  EXPECT_EQ(record(), record());
}

TEST(ShardedSchedulerTest, StopCancelsAllTimers) {
  Simulator sim;
  ShardedScheduler sched;
  int fired = 0;
  sched.start(sim, SimDuration::seconds(1), 4, 20, Rng(9),
              [&fired](std::uint32_t) { ++fired; });
  sim.runUntil(SimTime::seconds(3));
  const int before = fired;
  EXPECT_GT(before, 0);
  sched.stop();
  EXPECT_FALSE(sched.running());
  sim.runUntil(SimTime::seconds(10));
  EXPECT_EQ(fired, before);
}

TEST(ShardedSchedulerTest, EmptyPopulationSchedulesNothing) {
  Simulator sim;
  ShardedScheduler sched;
  sched.start(sim, SimDuration::seconds(1), 4, 0, Rng(1),
              [](std::uint32_t) { FAIL() << "no member should fire"; });
  EXPECT_FALSE(sched.running());
  EXPECT_EQ(sim.pendingEvents(), 0u);
  sim.runUntil(SimTime::seconds(5));
}

}  // namespace
}  // namespace avmem::sim
