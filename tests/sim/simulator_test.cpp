#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace avmem::sim {
namespace {

TEST(SimTimeTest, UnitConversionsRoundTrip) {
  EXPECT_EQ(SimTime::seconds(1), SimTime::millis(1000));
  EXPECT_EQ(SimTime::minutes(1), SimTime::seconds(60));
  EXPECT_EQ(SimTime::hours(1), SimTime::minutes(60));
  EXPECT_EQ(SimTime::days(1), SimTime::hours(24));
  EXPECT_DOUBLE_EQ(SimTime::millis(1500).toSeconds(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::seconds(90).toMinutes(), 1.5);
  EXPECT_EQ(SimTime::fromSeconds(0.25), SimTime::millis(250));
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime t = SimTime::seconds(10) + SimTime::seconds(5);
  EXPECT_EQ(t, SimTime::seconds(15));
  EXPECT_EQ(t - SimTime::seconds(5), SimTime::seconds(10));
  EXPECT_EQ(SimTime::seconds(3) * 4, SimTime::seconds(12));
  EXPECT_LT(SimTime::seconds(1), SimTime::seconds(2));
}

TEST(SimTimeTest, ToStringPicksSensibleUnits) {
  EXPECT_EQ(SimTime::micros(500).toString(), "500us");
  EXPECT_EQ(SimTime::millis(20).toString(), "20.0ms");
  EXPECT_EQ(SimTime::seconds(3).toString(), "3.00s");
  EXPECT_EQ(SimTime::minutes(90).toString(), "1h30m");
  EXPECT_EQ(SimTime::days(2).toString(), "2d00h");
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  std::vector<double> firedAt;
  sim.schedule(SimTime::seconds(2),
               [&] { firedAt.push_back(sim.now().toSeconds()); });
  sim.schedule(SimTime::seconds(1),
               [&] { firedAt.push_back(sim.now().toSeconds()); });
  sim.runAll();
  EXPECT_EQ(firedAt, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sim.executedEvents(), 2u);
}

TEST(SimulatorTest, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime::seconds(1), [&] { ++fired; });
  sim.schedule(SimTime::seconds(5), [&] { ++fired; });
  sim.runUntil(SimTime::seconds(3));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::seconds(3));  // clock parked at the bound
  sim.runUntil(SimTime::seconds(10));
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventAtExactBoundRuns) {
  Simulator sim;
  bool fired = false;
  sim.schedule(SimTime::seconds(3), [&] { fired = true; });
  sim.runUntil(SimTime::seconds(3));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, CancelledHeadDoesNotLetRunUntilOvershoot) {
  // Regression: runUntil used to gate on the raw head timestamp. With a
  // lazily-cancelled event at t=100 < until and a live one at t=200 >
  // until, the gate passed, popNext skipped the cancelled head, and the
  // t=200 event ran with the clock jumping past the horizon. Cancel-and-
  // rearm patterns (the shuffle channel's wake) hit this constantly.
  Simulator sim;
  bool fired = false;
  auto handle = sim.schedule(SimTime::millis(100), [] {});
  sim.schedule(SimTime::millis(200), [&] { fired = true; });
  handle.cancel();
  sim.runUntil(SimTime::millis(150));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now(), SimTime::millis(150));
  sim.runUntil(SimTime::millis(250));
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), SimTime::millis(250));
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule(SimTime::seconds(1), recurse);
  };
  sim.schedule(SimTime::seconds(1), recurse);
  sim.runAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), SimTime::seconds(5));
}

TEST(SimulatorTest, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(SimTime::seconds(-1), [] {}),
               std::invalid_argument);
}

TEST(SimulatorTest, ScheduleAtPastThrows) {
  Simulator sim;
  sim.schedule(SimTime::seconds(2), [] {});
  sim.runAll();
  EXPECT_THROW(sim.scheduleAt(SimTime::seconds(1), [] {}),
               std::invalid_argument);
}

TEST(PeriodicTaskTest, FiresOnSchedule) {
  Simulator sim;
  PeriodicTask task;
  std::vector<double> times;
  task.start(sim, SimTime::seconds(1), SimTime::seconds(2),
             [&] { times.push_back(sim.now().toSeconds()); });
  sim.runUntil(SimTime::seconds(8));
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0, 5.0, 7.0}));
}

TEST(PeriodicTaskTest, StopInsideCallback) {
  Simulator sim;
  PeriodicTask task;
  int fired = 0;
  task.start(sim, SimTime::seconds(1), SimTime::seconds(1), [&] {
    if (++fired == 3) task.stop();
  });
  sim.runUntil(SimTime::seconds(100));
  EXPECT_EQ(fired, 3);
}

TEST(PeriodicTaskTest, DestructorCancelsPendingFiring) {
  Simulator sim;
  int fired = 0;
  {
    PeriodicTask task;
    task.start(sim, SimTime::seconds(1), SimTime::seconds(1),
               [&] { ++fired; });
    sim.runUntil(SimTime::seconds(2));
    EXPECT_EQ(fired, 2);
  }
  sim.runUntil(SimTime::seconds(10));
  EXPECT_EQ(fired, 2);  // no firings after destruction
}

}  // namespace
}  // namespace avmem::sim
