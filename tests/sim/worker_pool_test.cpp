// The maintenance worker pool: every task exactly once, barrier semantics,
// reuse across batches, and exception propagation.
#include "sim/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/random.hpp"

namespace avmem::sim {
namespace {

TEST(WorkerPoolTest, RunsEveryTaskExactlyOnce) {
  WorkerPool pool(4);
  constexpr std::size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run(kTasks, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(WorkerPoolTest, RunIsABarrier) {
  // Per-task results written with no synchronization must all be visible
  // to the caller after run() returns.
  WorkerPool pool(4);
  constexpr std::size_t kTasks = 513;
  std::vector<std::uint64_t> out(kTasks, 0);
  pool.run(kTasks, [&out](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < kTasks; ++i) {
    ASSERT_EQ(out[i], i * i);
  }
}

TEST(WorkerPoolTest, ReusableAcrossBatches) {
  WorkerPool pool(3);
  std::atomic<std::uint64_t> sum{0};
  for (int batch = 0; batch < 50; ++batch) {
    pool.run(100, [&sum](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 50u * (99u * 100u / 2u));
}

TEST(WorkerPoolTest, SingleThreadRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.threadCount(), 1u);
  std::vector<std::size_t> order;
  pool.run(5, [&order](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(WorkerPoolTest, HandlesFewerTasksThanThreads) {
  WorkerPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.run(3, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPoolTest, EmptyBatchIsANoOp) {
  WorkerPool pool(4);
  pool.run(0, [](std::size_t) { FAIL() << "no task should run"; });
}

TEST(WorkerPoolTest, ZeroThreadsClampsToOne) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.threadCount(), 1u);
  int ran = 0;
  pool.run(4, [&ran](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 4);
}

TEST(WorkerPoolTest, PropagatesTaskException) {
  WorkerPool pool(4);
  EXPECT_THROW(pool.run(100,
                        [](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  // The pool survives the failed batch.
  std::atomic<int> ran{0};
  pool.run(10, [&ran](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 10);
}

TEST(WorkerPoolTest, ResultsIndependentOfThreadCount) {
  // The plan-phase contract in miniature: each task derives its own
  // counter-based stream and writes only its own slot, so any thread
  // count produces identical output.
  constexpr std::size_t kTasks = 200;
  auto compute = [](std::size_t threads) {
    WorkerPool pool(threads);
    std::vector<std::uint64_t> out(kTasks, 0);
    pool.run(kTasks, [&out](std::size_t i) {
      out[i] = Rng::stream(99, i, 7).next();
    });
    return out;
  };
  const auto serial = compute(1);
  EXPECT_EQ(compute(2), serial);
  EXPECT_EQ(compute(8), serial);
}

TEST(WorkerPoolTest, BeginWaitCompletesEveryTask) {
  WorkerPool pool(4);
  constexpr std::size_t kTasks = 257;
  std::vector<std::uint64_t> out(kTasks, 0);
  const WorkerPool::TaskFn fn = [&out](std::size_t i) { out[i] = i + 1; };
  pool.begin(kTasks, fn);
  pool.wait();
  for (std::size_t i = 0; i < kTasks; ++i) {
    ASSERT_EQ(out[i], i + 1) << "task " << i;
  }
}

TEST(WorkerPoolTest, BeginDoneFlagsSupportOrderedStreamingConsumer) {
  WorkerPool pool(4);
  constexpr std::size_t kTasks = 96;
  std::vector<std::atomic<std::uint8_t>> done(kTasks);
  for (auto& d : done) d.store(0, std::memory_order_relaxed);
  std::vector<std::uint64_t> out(kTasks, 0);
  const WorkerPool::TaskFn fn = [&out](std::size_t i) { out[i] = i * 3; };
  pool.begin(kTasks, fn, done.data());
  // Consume results in task order while the batch may still be running —
  // the release store on each flag must publish that task's write.
  for (std::size_t i = 0; i < kTasks; ++i) {
    while (done[i].load(std::memory_order_acquire) == 0) {
      ASSERT_FALSE(pool.asyncAbandoned());
      std::this_thread::yield();
    }
    ASSERT_EQ(out[i], i * 3) << "task " << i;
  }
  pool.wait();
}

TEST(WorkerPoolTest, BeginWaitPropagatesExceptionAndPoolSurvives) {
  WorkerPool pool(4);
  const WorkerPool::TaskFn fn = [](std::size_t i) {
    if (i == 11) throw std::runtime_error("boom");
  };
  pool.begin(100, fn);
  EXPECT_THROW(pool.wait(), std::runtime_error);
  std::atomic<int> ran{0};
  pool.run(10, [&ran](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 10);
}

TEST(WorkerPoolTest, BeginRunsInlineWithoutWorkers) {
  // threads <= 1 spawns no workers: begin() degrades to an inline serial
  // loop (flags included) and wait() is a no-op.
  WorkerPool pool(1);
  std::vector<std::size_t> order;
  std::vector<std::atomic<std::uint8_t>> done(4);
  for (auto& d : done) d.store(0, std::memory_order_relaxed);
  const WorkerPool::TaskFn fn = [&order](std::size_t i) {
    order.push_back(i);
  };
  pool.begin(4, fn, done.data());
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
  for (auto& d : done) EXPECT_EQ(d.load(), 1);
  pool.wait();
  // Inline task exceptions surface from begin() itself.
  const WorkerPool::TaskFn boom = [](std::size_t) {
    throw std::runtime_error("boom");
  };
  EXPECT_THROW(pool.begin(1, boom), std::runtime_error);
}

TEST(RngStreamTest, PureFunctionOfSeedMemberRound) {
  EXPECT_EQ(Rng::stream(1, 2, 3).next(), Rng::stream(1, 2, 3).next());
  // Distinct on every coordinate.
  const auto base = Rng::stream(1, 2, 3).next();
  EXPECT_NE(Rng::stream(2, 2, 3).next(), base);
  EXPECT_NE(Rng::stream(1, 3, 3).next(), base);
  EXPECT_NE(Rng::stream(1, 2, 4).next(), base);
}

TEST(RngStreamTest, StreamsLookIndependent) {
  // Crude uniformity check over member-adjacent streams.
  double sum = 0.0;
  constexpr int kStreams = 2000;
  for (int m = 0; m < kStreams; ++m) {
    sum += Rng::stream(42, static_cast<std::uint64_t>(m), 0).uniform();
  }
  EXPECT_NEAR(sum / kStreams, 0.5, 0.02);
}

}  // namespace
}  // namespace avmem::sim
