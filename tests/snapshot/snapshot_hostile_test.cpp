// Hostile-input hardening: a checkpoint that is truncated, bit-flipped,
// version-skewed, config-skewed, or structurally lying must produce the
// matching typed CheckpointError — never UB, never a silent partial
// restore, never an attacker-sized allocation. CI runs this suite under
// AddressSanitizer, so any out-of-bounds parse the assertions miss still
// fails the job.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "core/simulation.hpp"
#include "snapshot/checkpoint.hpp"

namespace avmem::snapshot {
namespace {

using core::AvmemSimulation;
using core::Scenario;

/// Fixed byte layout of the file header (magic + version + fingerprint +
/// hosts + seed) — the offsets the mutation helpers below patch.
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8 + 8;
constexpr std::size_t kVersionOffset = 8;
/// Per-section frame: u32 id + u64 len + u32 crc.
constexpr std::size_t kFrameBytes = 4 + 8 + 4;

Scenario donorScenario() {
  Scenario s = core::makeScaleScenario(250, /*seed=*/3);
  // A fast shuffle keeps legs in flight at the save instant, so the CHAN
  // section is non-trivial.
  s.config.shuffle.period = sim::SimDuration::seconds(15);
  return s;
}

/// One valid warm checkpoint, produced once and shared by every mutation
/// test (saving is the expensive part).
const std::string& goodBytes() {
  static const std::string bytes = [] {
    AvmemSimulation donor(donorScenario().config);
    donor.warmup(sim::SimDuration::minutes(10));
    std::ostringstream out(std::ios::binary);
    donor.saveCheckpoint(out);
    return out.str();
  }();
  return bytes;
}

void expectRestoreThrows(const std::string& bytes,
                         void (*check)(const CheckpointError&)) {
  AvmemSimulation victim(donorScenario().config);
  std::istringstream in(bytes, std::ios::binary);
  try {
    victim.restoreCheckpoint(in);
    FAIL() << "restore accepted hostile input";
  } catch (const CheckpointError& e) {
    check(e);
  }
  // A rejected restore must leave the system unstarted and event-free —
  // usable for a later, valid restore.
  EXPECT_EQ(victim.membershipEngine().stats().discoveryRounds, 0u);
}

template <typename Expected>
void expectRestoreError(const std::string& bytes) {
  expectRestoreThrows(bytes, [](const CheckpointError& e) {
    EXPECT_NE(dynamic_cast<const Expected*>(&e), nullptr)
        << "wrong error type: " << e.what();
  });
}

/// A section frame located inside the raw byte string.
struct FrameRef {
  std::uint32_t id = 0;
  std::size_t frameStart = 0;
  std::size_t payloadStart = 0;
  std::size_t payloadLen = 0;
};

std::vector<FrameRef> walkFrames(const std::string& bytes) {
  std::vector<FrameRef> frames;
  std::size_t pos = kHeaderBytes;
  while (pos + kFrameBytes <= bytes.size()) {
    FrameRef f;
    f.frameStart = pos;
    std::memcpy(&f.id, bytes.data() + pos, 4);
    std::uint64_t len = 0;
    std::memcpy(&len, bytes.data() + pos + 4, 8);
    f.payloadStart = pos + kFrameBytes;
    f.payloadLen = static_cast<std::size_t>(len);
    frames.push_back(f);
    pos = f.payloadStart + f.payloadLen;
  }
  return frames;
}

/// Reassemble a file from (possibly mutated) section payloads with
/// correct CRCs — for attacks that must get PAST the checksum.
std::string reframe(const std::string& header,
                    const std::vector<std::pair<std::uint32_t, std::string>>&
                        sections) {
  std::string out = header;
  for (const auto& [id, payload] : sections) {
    const std::uint64_t len = payload.size();
    const std::uint32_t crc = crc32(
        reinterpret_cast<const std::uint8_t*>(payload.data()),
        payload.size());
    out.append(reinterpret_cast<const char*>(&id), 4);
    out.append(reinterpret_cast<const char*>(&len), 8);
    out.append(reinterpret_cast<const char*>(&crc), 4);
    out.append(payload);
  }
  return out;
}

std::vector<std::pair<std::uint32_t, std::string>> sectionsOf(
    const std::string& bytes) {
  std::vector<std::pair<std::uint32_t, std::string>> out;
  for (const FrameRef& f : walkFrames(bytes)) {
    out.emplace_back(f.id,
                     bytes.substr(f.payloadStart, f.payloadLen));
  }
  return out;
}

TEST(SnapshotHostileTest, EmptyAndGarbageStreams) {
  expectRestoreError<CheckpointFormatError>("");
  expectRestoreError<CheckpointFormatError>("short");
  expectRestoreError<CheckpointFormatError>(
      std::string(1024, '\x5a'));  // plausible length, wrong magic
}

TEST(SnapshotHostileTest, BadMagic) {
  std::string bytes = goodBytes();
  bytes[0] ^= 0x01;
  expectRestoreError<CheckpointFormatError>(bytes);
}

TEST(SnapshotHostileTest, VersionSkew) {
  std::string bytes = goodBytes();
  const std::uint32_t future = kFormatVersion + 7;
  std::memcpy(bytes.data() + kVersionOffset, &future, 4);
  expectRestoreError<CheckpointVersionError>(bytes);
}

TEST(SnapshotHostileTest, TruncationAtEveryBoundary) {
  const std::string& good = goodBytes();
  std::vector<std::size_t> cuts = {1,  4,  kHeaderBytes - 1, kHeaderBytes + 3,
                                   kHeaderBytes + kFrameBytes - 1};
  for (const FrameRef& f : walkFrames(good)) {
    cuts.push_back(f.payloadStart);           // frame with no payload
    cuts.push_back(f.payloadStart + f.payloadLen / 2);  // mid-payload
  }
  cuts.push_back(good.size() - 1);
  for (const std::size_t cut : cuts) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    ASSERT_LT(cut, good.size());
    expectRestoreError<CheckpointFormatError>(good.substr(0, cut));
  }
  // Truncation at an exact section boundary parses cleanly but loses
  // mandatory sections — still a loud format error. (Cutting before the
  // second-to-last frame drops both the facade-RNG section and the
  // trailing optional Markov-cursor section; dropping only the optional
  // one would legitimately restore.)
  const std::vector<FrameRef> frames = walkFrames(good);
  ASSERT_GT(frames.size(), 2u);
  expectRestoreError<CheckpointFormatError>(
      good.substr(0, frames[frames.size() - 2].frameStart));
}

TEST(SnapshotHostileTest, BitFlipInEverySectionIsCaughtByCrc) {
  const std::string& good = goodBytes();
  for (const FrameRef& f : walkFrames(good)) {
    if (f.payloadLen == 0) continue;
    SCOPED_TRACE("section=" + std::to_string(f.id));
    std::string bytes = good;
    bytes[f.payloadStart + f.payloadLen / 2] ^= 0x40;
    expectRestoreError<CheckpointCrcError>(bytes);
  }
}

TEST(SnapshotHostileTest, AbsurdSectionLengthRejectedBeforeAllocation) {
  std::string bytes = goodBytes();
  const std::vector<FrameRef> frames = walkFrames(bytes);
  ASSERT_FALSE(frames.empty());
  // Lie about the first section's length: petabyte-scale. The reader's
  // byte budget must reject this before any resize happens — under ASan
  // an attempted 2^60-byte allocation would abort the process instead of
  // throwing, so reaching the typed error proves the ordering.
  const std::uint64_t absurd = 1ull << 60;
  std::memcpy(bytes.data() + frames[0].frameStart + 4, &absurd, 8);
  expectRestoreError<CheckpointFormatError>(bytes);
}

TEST(SnapshotHostileTest, UnknownSectionsAreSkipped) {
  const std::string& good = goodBytes();
  auto sections = sectionsOf(good);
  ASSERT_FALSE(sections.empty());
  // A newer writer appended sections this build has never heard of —
  // one mid-stream, one trailing.
  sections.insert(sections.begin() + 1,
                  {fourcc('Z', 'Z', 'Z', '1'), std::string("future data")});
  sections.push_back({fourcc('Z', 'Z', 'Z', '2'), std::string(64, '\x7f')});
  const std::string bytes = reframe(good.substr(0, kHeaderBytes), sections);

  AvmemSimulation restored(donorScenario().config);
  std::istringstream in(bytes, std::ios::binary);
  restored.restoreCheckpoint(in);

  // The restore ignored the unknown sections entirely: re-saving yields
  // the original canonical bytes.
  std::ostringstream out(std::ios::binary);
  restored.saveCheckpoint(out);
  EXPECT_EQ(out.str(), good);
}

TEST(SnapshotHostileTest, PayloadShrunkBehindValidCrc) {
  // CRC-valid but structurally short: the section cursor must hit its
  // bounds check, not read past the buffer (ASan would catch the latter).
  const std::string& good = goodBytes();
  auto sections = sectionsOf(good);
  for (auto& [id, payload] : sections) {
    if (id == fourcc('S', 'I', 'M', 'U')) {
      ASSERT_GE(payload.size(), 16u);
      payload.resize(10);  // i64 now + 2 bytes of the executed counter
    }
  }
  expectRestoreError<CheckpointFormatError>(
      reframe(good.substr(0, kHeaderBytes), sections));
}

TEST(SnapshotHostileTest, LyingNodeCountBehindValidCrc) {
  const std::string& good = goodBytes();
  auto sections = sectionsOf(good);
  for (auto& [id, payload] : sections) {
    if (id == fourcc('N', 'O', 'D', 'S')) {
      std::uint64_t count = 0;
      std::memcpy(&count, payload.data(), 8);
      ++count;
      std::memcpy(payload.data(), &count, 8);
    }
  }
  expectRestoreError<CheckpointFormatError>(
      reframe(good.substr(0, kHeaderBytes), sections));
}

TEST(SnapshotHostileTest, ConfigFingerprintMismatch) {
  // A checkpoint from seed 3 must not restore into a seed-4 world.
  Scenario other = donorScenario();
  other.config.seed = 4;
  AvmemSimulation victim(other.config);
  std::istringstream in(goodBytes(), std::ios::binary);
  EXPECT_THROW(victim.restoreCheckpoint(in), CheckpointConfigError);
}

TEST(SnapshotHostileTest, SaveRefusesUnsupportedStates) {
  // Never started: nothing warm to save.
  {
    AvmemSimulation cold(donorScenario().config);
    std::ostringstream out(std::ios::binary);
    EXPECT_THROW(cold.saveCheckpoint(out), CheckpointUnsupportedError);
  }
  // Stateful availability backend: the format does not capture monitor
  // state, so it must refuse rather than snapshot partially.
  {
    Scenario aged = donorScenario();
    aged.config.backend = core::AvailabilityBackend::kAged;
    AvmemSimulation system(aged.config);
    system.warmup(sim::SimDuration::minutes(5));
    std::ostringstream out(std::ios::binary);
    EXPECT_THROW(system.saveCheckpoint(out), CheckpointUnsupportedError);
  }
}

TEST(SnapshotHostileTest, RestoreRefusesStartedSystem) {
  AvmemSimulation running(donorScenario().config);
  running.warmup(sim::SimDuration::minutes(5));
  std::istringstream in(goodBytes(), std::ios::binary);
  EXPECT_THROW(running.restoreCheckpoint(in), CheckpointUnsupportedError);
}

TEST(SnapshotHostileTest, MissingFileIsIoError) {
  AvmemSimulation victim(donorScenario().config);
  EXPECT_THROW(victim.restoreCheckpoint("/nonexistent/path/warm.avmem"),
               CheckpointIoError);
}

}  // namespace
}  // namespace avmem::snapshot
