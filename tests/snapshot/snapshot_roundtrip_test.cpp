// Round-trip property: serialize -> restore into a fresh system ->
// re-serialize must be BYTE-identical, across randomized warm worlds.
//
// Byte-identity is a deliberately stronger property than state equality:
// it proves the format is canonical (no padding bytes, no hash-order
// leakage, queue seqs normalized to dense ranks) and that restore loses
// nothing — any owner field the re-save path reads back differently
// shows up as a diff here long before it would skew a simulation result.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "core/simulation.hpp"
#include "snapshot/checkpoint.hpp"

namespace avmem::snapshot {
namespace {

using core::AvmemSimulation;
using core::Scenario;

/// One randomized world shape. Fields the fuzz loop varies; everything
/// else rides on the scale-scenario defaults.
struct WorldSpec {
  std::uint32_t hosts = 500;
  std::uint64_t seed = 1;
  core::AvailabilityBackend backend = core::AvailabilityBackend::kOracle;
  bool feed = true;
  /// Short periods put shuffle legs in flight at almost any save instant.
  std::int64_t shufflePeriodSecs = 60;
  /// Deliberately not a multiple of any protocol period, so the save
  /// instant lands mid-round with timers at unaligned offsets.
  std::int64_t warmupMins = 17;
};

Scenario makeScenarioFor(const WorldSpec& spec) {
  Scenario s = core::makeScaleScenario(spec.hosts, spec.seed);
  s.config.backend = spec.backend;
  s.config.candidateFeed.enabled = spec.feed;
  s.config.shuffle.period = sim::SimDuration::seconds(spec.shufflePeriodSecs);
  return s;
}

std::string checkpointBytes(const AvmemSimulation& system) {
  std::ostringstream out(std::ios::binary);
  system.saveCheckpoint(out);
  return out.str();
}

/// The property itself: warm up a world, save, restore the bytes into a
/// fresh identically-configured system, save again, compare bytes.
void expectRoundTrip(const WorldSpec& spec) {
  SCOPED_TRACE("hosts=" + std::to_string(spec.hosts) +
               " seed=" + std::to_string(spec.seed) +
               " backend=" + std::to_string(static_cast<int>(spec.backend)) +
               " feed=" + std::to_string(spec.feed) +
               " shufflePeriodSecs=" +
               std::to_string(spec.shufflePeriodSecs) +
               " warmupMins=" + std::to_string(spec.warmupMins));
  const Scenario scenario = makeScenarioFor(spec);

  AvmemSimulation donor(scenario.config);
  donor.warmup(sim::SimDuration::minutes(spec.warmupMins));
  const std::string first = checkpointBytes(donor);
  ASSERT_FALSE(first.empty());

  AvmemSimulation restored(scenario.config);
  std::istringstream in(first, std::ios::binary);
  restored.restoreCheckpoint(in);
  const std::string second = checkpointBytes(restored);

  // EXPECT_EQ on multi-MB strings prints unusable diffs; compare
  // explicitly and report the first differing offset instead.
  ASSERT_EQ(first.size(), second.size());
  if (first != second) {
    std::size_t at = 0;
    while (at < first.size() && first[at] == second[at]) ++at;
    FAIL() << "re-serialization diverged at byte " << at << " of "
           << first.size();
  }
}

TEST(SnapshotRoundtripTest, OracleWithFeedMidRound) {
  expectRoundTrip({.hosts = 800,
                   .seed = 11,
                   .backend = core::AvailabilityBackend::kOracle,
                   .feed = true,
                   .shufflePeriodSecs = 15,
                   .warmupMins = 17});
}

TEST(SnapshotRoundtripTest, NoisyBackendNoFeed) {
  expectRoundTrip({.hosts = 500,
                   .seed = 23,
                   .backend = core::AvailabilityBackend::kNoisy,
                   .feed = false,
                   .shufflePeriodSecs = 30,
                   .warmupMins = 11});
}

TEST(SnapshotRoundtripTest, DenseTraceBackendHasNoMarkovSection) {
  // oracle-small materializes its trace (no Markov model), so the MRKV
  // section is absent — the optional-section path must round-trip too.
  Scenario s = core::makeScenario("oracle-small");
  AvmemSimulation donor(s.config);
  donor.warmup(sim::SimDuration::minutes(13));
  const std::string first = checkpointBytes(donor);

  AvmemSimulation restored(s.config);
  std::istringstream in(first, std::ios::binary);
  restored.restoreCheckpoint(in);
  EXPECT_EQ(checkpointBytes(restored), first);
}

TEST(SnapshotRoundtripTest, RandomizedWorlds) {
  // Deterministically seeded fuzz over the world-shape axes the format
  // has to get right simultaneously: population, backend, feed on/off,
  // in-flight shuffle density, and the save instant's phase inside the
  // maintenance rounds.
  std::mt19937_64 rng(20070740);
  std::uniform_int_distribution<std::uint32_t> hosts(200, 1200);
  std::uniform_int_distribution<std::uint64_t> seed(1, 1u << 30);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<std::int64_t> period(10, 90);
  std::uniform_int_distribution<std::int64_t> warm(7, 29);

  for (int round = 0; round < 6; ++round) {
    WorldSpec spec;
    spec.hosts = hosts(rng);
    spec.seed = seed(rng);
    spec.backend = coin(rng) != 0 ? core::AvailabilityBackend::kOracle
                                  : core::AvailabilityBackend::kNoisy;
    spec.feed = coin(rng) != 0;
    spec.shufflePeriodSecs = period(rng);
    spec.warmupMins = warm(rng);
    expectRoundTrip(spec);
  }
}

TEST(SnapshotRoundtripTest, RestoredWorldKeepsRunningDeterministically) {
  // Beyond byte-identity at the save instant: advancing donor and
  // restored worlds by the same delta must keep their checkpoints
  // byte-identical (the cheap in-suite cousin of the full
  // RestoreEqualsRunThrough gate in tests/core).
  const WorldSpec spec{.hosts = 600,
                       .seed = 5,
                       .backend = core::AvailabilityBackend::kOracle,
                       .feed = true,
                       .shufflePeriodSecs = 20,
                       .warmupMins = 15};
  const Scenario scenario = makeScenarioFor(spec);

  AvmemSimulation donor(scenario.config);
  donor.warmup(sim::SimDuration::minutes(spec.warmupMins));
  const std::string at_t = checkpointBytes(donor);
  donor.warmup(sim::SimDuration::minutes(10));
  const std::string donor_at_t2 = checkpointBytes(donor);

  AvmemSimulation restored(scenario.config);
  std::istringstream in(at_t, std::ios::binary);
  restored.restoreCheckpoint(in);
  restored.warmup(sim::SimDuration::minutes(10));
  EXPECT_EQ(checkpointBytes(restored), donor_at_t2);
}

TEST(SnapshotRoundtripTest, HeaderCarriesIdentity) {
  const WorldSpec spec{.hosts = 300, .seed = 99};
  const Scenario scenario = makeScenarioFor(spec);
  AvmemSimulation donor(scenario.config);
  donor.warmup(sim::SimDuration::minutes(8));
  const std::string bytes = checkpointBytes(donor);

  std::istringstream in(bytes, std::ios::binary);
  CheckpointReader reader(in);
  EXPECT_EQ(reader.header().version, kFormatVersion);
  EXPECT_EQ(reader.header().hosts, 300u);
  EXPECT_EQ(reader.header().seed, 99u);
  EXPECT_EQ(reader.header().fingerprint,
            configFingerprint(scenario.config));
}

}  // namespace
}  // namespace avmem::snapshot
