#include "stats/histogram.hpp"

#include <gtest/gtest.h>

namespace avmem::stats {
namespace {

TEST(HistogramTest, RejectsBadGeometry) {
  EXPECT_THROW(Histogram(1.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, BinIndexing) {
  Histogram h(0.0, 1.0, 10);
  EXPECT_EQ(h.binIndex(0.0), 0u);
  EXPECT_EQ(h.binIndex(0.05), 0u);
  EXPECT_EQ(h.binIndex(0.15), 1u);
  EXPECT_EQ(h.binIndex(0.95), 9u);
  EXPECT_EQ(h.binIndex(1.0), 9u);  // hi clamps into the last bin
  EXPECT_EQ(h.binIndex(-5.0), 0u);
  EXPECT_EQ(h.binIndex(5.0), 9u);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.binWidth(), 0.25);
  EXPECT_DOUBLE_EQ(h.binLo(1), 0.25);
  EXPECT_DOUBLE_EQ(h.binHi(1), 0.5);
  EXPECT_DOUBLE_EQ(h.binMid(1), 0.375);
}

TEST(HistogramTest, FractionAndDensity) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 30; ++i) h.add(0.05);  // bin 0
  for (int i = 0; i < 70; ++i) h.add(0.55);  // bin 5
  EXPECT_EQ(h.totalCount(), 100u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.3);
  EXPECT_DOUBLE_EQ(h.fraction(5), 0.7);
  EXPECT_DOUBLE_EQ(h.fraction(9), 0.0);
  // density = fraction / width.
  EXPECT_DOUBLE_EQ(h.densityAt(0.05), 3.0);
  EXPECT_DOUBLE_EQ(h.densityAt(0.55), 7.0);
}

TEST(HistogramTest, CdfAt) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 50; ++i) h.add(0.05);
  for (int i = 0; i < 50; ++i) h.add(0.95);
  EXPECT_DOUBLE_EQ(h.cdfAt(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(h.cdfAt(0.09), 0.5);
  EXPECT_DOUBLE_EQ(h.cdfAt(0.5), 0.5);
  EXPECT_DOUBLE_EQ(h.cdfAt(1.0), 1.0);
}

TEST(HistogramTest, WeightedAdd) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 10);
  h.add(0.75, 30);
  EXPECT_EQ(h.count(0), 10u);
  EXPECT_EQ(h.count(1), 30u);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.75);
}

TEST(HistogramTest, MergeRequiresSameGeometry) {
  Histogram a(0.0, 1.0, 10);
  Histogram b(0.0, 1.0, 5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  Histogram c(0.0, 1.0, 10);
  c.add(0.5);
  a.add(0.1);
  a.merge(c);
  EXPECT_EQ(a.totalCount(), 2u);
}

TEST(HistogramTest, ClearResets) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.5);
  h.clear();
  EXPECT_EQ(h.totalCount(), 0u);
  EXPECT_DOUBLE_EQ(h.densityAt(0.5), 0.0);
}

TEST(HistogramTest, EmptyHistogramQueriesAreSafe) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(h.cdfAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.densityAt(0.5), 0.0);
}

}  // namespace
}  // namespace avmem::stats
