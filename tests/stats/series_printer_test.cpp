#include "stats/series_printer.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace avmem::stats {
namespace {

TEST(TablePrinterTest, AlignsHeadersAndRows) {
  TablePrinter t({"alpha", "beta"});
  t.addRow({1.0, 2.5});
  t.addRow({10.0, 0.125});
  EXPECT_EQ(t.rowCount(), 2u);

  std::ostringstream os;
  t.print(os, 3);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find("1.000"), std::string::npos);
  EXPECT_NE(out.find("0.125"), std::string::npos);
  // One header line + two data lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(TablePrinterTest, PrecisionIsHonored) {
  TablePrinter t({"x"});
  t.addRow({1.0 / 3.0});
  std::ostringstream os;
  t.print(os, 2);
  EXPECT_NE(os.str().find("0.33"), std::string::npos);
  EXPECT_EQ(os.str().find("0.333"), std::string::npos);
}

TEST(PrintCdfTest, EmitsEverySampleWithCumulativeFractions) {
  EmpiricalCdf cdf;
  cdf.add(3.0);
  cdf.add(1.0);
  std::ostringstream os;
  printCdf(os, "test", cdf);
  const std::string out = os.str();
  EXPECT_NE(out.find("# CDF: test (n=2)"), std::string::npos);
  EXPECT_NE(out.find("1.0000\t0.5000"), std::string::npos);
  EXPECT_NE(out.find("3.0000\t1.0000"), std::string::npos);
}

TEST(PrintCdfCompactTest, DownsamplesToRequestedPoints) {
  EmpiricalCdf cdf;
  for (int i = 1; i <= 1000; ++i) cdf.add(i);
  std::ostringstream os;
  printCdfCompact(os, "big", cdf, 5);
  const std::string out = os.str();
  // Header + exactly 5 quantile lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
  EXPECT_NE(out.find("\t1.0000"), std::string::npos);  // final quantile
}

TEST(PrintCdfCompactTest, EmptyCdfIsHandled) {
  EmpiricalCdf cdf;
  std::ostringstream os;
  printCdfCompact(os, "empty", cdf, 5);
  EXPECT_NE(os.str().find("(empty)"), std::string::npos);
}

}  // namespace
}  // namespace avmem::stats
