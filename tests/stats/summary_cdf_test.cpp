#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hpp"
#include "stats/cdf.hpp"
#include "stats/summary.hpp"

namespace avmem::stats {
namespace {

TEST(SummaryTest, EmptySummaryIsNeutral) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryTest, SampleVarianceBesselCorrected) {
  Summary s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.sampleVariance(), 2.0);
}

TEST(SummaryTest, MergeMatchesSequential) {
  sim::Rng rng(3);
  Summary whole;
  Summary left;
  Summary right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(SummaryTest, MergeWithEmptySides) {
  Summary a;
  Summary b;
  b.add(2.0);
  a.merge(b);  // empty += non-empty
  EXPECT_EQ(a.count(), 1u);
  Summary c;
  a.merge(c);  // non-empty += empty
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(EmpiricalCdfTest, QuantilesOnKnownData) {
  EmpiricalCdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 100.0);
  EXPECT_NEAR(cdf.median(), 50.0, 1.0);
  EXPECT_NEAR(cdf.quantile(0.9), 90.0, 1.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 50.5);
}

TEST(EmpiricalCdfTest, FractionBelow) {
  EmpiricalCdf cdf;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) cdf.add(x);
  EXPECT_DOUBLE_EQ(cdf.fractionBelow(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fractionBelow(2.0), 0.5);   // <= semantics
  EXPECT_DOUBLE_EQ(cdf.fractionBelow(3.5), 0.75);
  EXPECT_DOUBLE_EQ(cdf.fractionBelow(10.0), 1.0);
}

TEST(EmpiricalCdfTest, EmptyCdfBehaviour) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.fractionBelow(1.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 0.0);
  EXPECT_THROW((void)cdf.quantile(0.5), std::logic_error);
}

TEST(EmpiricalCdfTest, InterleavedAddAndQuery) {
  // The lazy-sorting invariant: mutations after queries re-sort correctly.
  EmpiricalCdf cdf;
  cdf.add(5.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 5.0);
  cdf.add(1.0);
  cdf.add(9.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 9.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 5.0);
}

TEST(EmpiricalCdfTest, BulkAdd) {
  EmpiricalCdf cdf;
  cdf.add(std::vector<double>{3.0, 1.0, 2.0});
  EXPECT_EQ(cdf.count(), 3u);
  const auto sorted = cdf.sortedSamples();
  EXPECT_DOUBLE_EQ(sorted.front(), 1.0);
  EXPECT_DOUBLE_EQ(sorted.back(), 3.0);
}

}  // namespace
}  // namespace avmem::stats
