// Backend equivalence: the dense and bit-packed representations of the
// same timeline must agree bit-for-bit on every query the interface
// offers — this is what lets experiments swap backends without changing
// results.
#include "trace/availability_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/random.hpp"
#include "trace/bitpacked_trace.hpp"
#include "trace/churn_trace.hpp"
#include "trace/overnet_generator.hpp"

namespace avmem::trace {
namespace {

std::vector<std::vector<std::uint8_t>> randomTimeline(std::size_t hosts,
                                                      std::size_t epochs,
                                                      std::uint64_t seed,
                                                      double pOn) {
  sim::Rng rng(seed);
  std::vector<std::vector<std::uint8_t>> t(hosts);
  for (auto& row : t) {
    row.resize(epochs);
    for (auto& v : row) v = rng.chance(pOn) ? 1 : 0;
  }
  return t;
}

void expectIdenticalAnswers(const AvailabilityModel& a,
                            const AvailabilityModel& b) {
  ASSERT_EQ(a.hostCount(), b.hostCount());
  ASSERT_EQ(a.epochCount(), b.epochCount());
  ASSERT_EQ(a.epochDuration(), b.epochDuration());
  const auto hosts = static_cast<HostIndex>(a.hostCount());
  const std::size_t epochs = a.epochCount();
  for (HostIndex h = 0; h < hosts; ++h) {
    EXPECT_DOUBLE_EQ(a.fullAvailability(h), b.fullAvailability(h)) << h;
    for (std::size_t e = 0; e < epochs; ++e) {
      ASSERT_EQ(a.onlineInEpoch(h, e), b.onlineInEpoch(h, e))
          << "host " << h << " epoch " << e;
      ASSERT_EQ(a.onlineEpochsThrough(h, e), b.onlineEpochsThrough(h, e))
          << "host " << h << " epoch " << e;
      ASSERT_DOUBLE_EQ(a.availabilityUpToEpoch(h, e),
                       b.availabilityUpToEpoch(h, e))
          << "host " << h << " epoch " << e;
      for (const std::size_t w : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{65},
                                  epochs + 3}) {
        ASSERT_DOUBLE_EQ(a.windowedAvailability(h, e, w),
                         b.windowedAvailability(h, e, w))
            << "host " << h << " epoch " << e << " window " << w;
      }
    }
    // onlineAt exercises the shared epochAt clamping.
    const auto dur = a.epochDuration();
    ASSERT_EQ(a.onlineAt(h, sim::SimTime::zero()),
              b.onlineAt(h, sim::SimTime::zero()));
    ASSERT_EQ(a.onlineAt(h, dur * 3 + sim::SimDuration::micros(1)),
              b.onlineAt(h, dur * 3 + sim::SimDuration::micros(1)));
    ASSERT_EQ(a.onlineAt(h, dur * static_cast<std::int64_t>(epochs + 10)),
              b.onlineAt(h, dur * static_cast<std::int64_t>(epochs + 10)));
  }
  for (std::size_t e = 0; e < epochs; ++e) {
    ASSERT_EQ(a.onlineCountInEpoch(e), b.onlineCountInEpoch(e)) << e;
    ASSERT_EQ(a.onlineHostsInEpoch(e), b.onlineHostsInEpoch(e)) << e;
  }
}

TEST(BackendEquivalenceTest, RandomTimelinesAgreeBitForBit) {
  const auto dur = sim::SimDuration::minutes(20);
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    for (const double pOn : {0.05, 0.5, 0.95}) {
      // Epoch counts straddling the 64-bit word boundary.
      for (const std::size_t epochs :
           {std::size_t{1}, std::size_t{63}, std::size_t{64}, std::size_t{65},
            std::size_t{200}}) {
        const auto timeline = randomTimeline(7, epochs, seed, pOn);
        const ChurnTrace dense(timeline, dur);
        const BitPackedTrace packed(timeline, dur);
        expectIdenticalAnswers(dense, packed);
      }
    }
  }
}

TEST(BackendEquivalenceTest, SyntheticOvernetTimelineAgrees) {
  OvernetTraceConfig cfg;
  cfg.hosts = 60;
  cfg.epochs = 7 * 24 * 3;
  cfg.seed = 4242;
  const ChurnTrace dense = generateOvernetTrace(cfg);
  const BitPackedTrace packed(generateOvernetTimeline(cfg),
                              cfg.epochDuration);
  expectIdenticalAnswers(dense, packed);
}

TEST(BackendEquivalenceTest, RepackFromModelMatches) {
  const auto timeline = randomTimeline(5, 130, 99, 0.4);
  const auto dur = sim::SimDuration::minutes(20);
  const ChurnTrace dense(timeline, dur);
  const BitPackedTrace repacked{static_cast<const AvailabilityModel&>(dense)};
  expectIdenticalAnswers(dense, repacked);
}

TEST(BackendEquivalenceTest, BitPackedRejectsMalformedInput) {
  const auto dur = sim::SimDuration::minutes(1);
  EXPECT_THROW(BitPackedTrace({}, dur), std::invalid_argument);
  EXPECT_THROW(BitPackedTrace({{}}, dur), std::invalid_argument);
  EXPECT_THROW(BitPackedTrace({{1, 0}, {1}}, dur), std::invalid_argument);
  EXPECT_THROW(BitPackedTrace({{1}}, sim::SimDuration::zero()),
               std::invalid_argument);
}

TEST(BackendEquivalenceTest, BitPackedRangeChecksMatchDense) {
  const auto timeline = randomTimeline(3, 10, 5, 0.5);
  const auto dur = sim::SimDuration::minutes(20);
  const BitPackedTrace packed(timeline, dur);
  EXPECT_THROW((void)packed.onlineInEpoch(3, 0), std::out_of_range);
  EXPECT_THROW((void)packed.onlineInEpoch(0, 10), std::out_of_range);
  EXPECT_THROW((void)packed.availabilityUpToEpoch(7, 0), std::out_of_range);
}

TEST(BackendEquivalenceTest, PackedBitmapIsSmaller) {
  // 1000 epochs: dense stores ~5 B/host-epoch, packed ~0.19 B/host-epoch.
  const auto timeline = randomTimeline(20, 1000, 7, 0.3);
  const auto dur = sim::SimDuration::minutes(20);
  const ChurnTrace dense(timeline, dur);
  const BitPackedTrace packed(timeline, dur);
  EXPECT_LT(packed.memoryFootprintBytes() * 10,
            dense.memoryFootprintBytes());
}

}  // namespace
}  // namespace avmem::trace
