#include "trace/churn_trace.hpp"

#include <gtest/gtest.h>

namespace avmem::trace {
namespace {

ChurnTrace makeTinyTrace() {
  // Host 0: 1 0 1 0 ; host 1: 1 1 1 1 ; host 2: 0 0 0 1. 1-minute epochs.
  return ChurnTrace(
      {
          {1, 0, 1, 0},
          {1, 1, 1, 1},
          {0, 0, 0, 1},
      },
      sim::SimDuration::minutes(1));
}

TEST(ChurnTraceTest, RejectsMalformedInput) {
  EXPECT_THROW(ChurnTrace({}, sim::SimDuration::minutes(1)),
               std::invalid_argument);
  EXPECT_THROW(ChurnTrace({{}}, sim::SimDuration::minutes(1)),
               std::invalid_argument);
  EXPECT_THROW(ChurnTrace({{1, 0}, {1}}, sim::SimDuration::minutes(1)),
               std::invalid_argument);
  EXPECT_THROW(ChurnTrace({{1}}, sim::SimDuration::zero()),
               std::invalid_argument);
}

TEST(ChurnTraceTest, BasicGeometry) {
  const auto t = makeTinyTrace();
  EXPECT_EQ(t.hostCount(), 3u);
  EXPECT_EQ(t.epochCount(), 4u);
  EXPECT_EQ(t.duration(), sim::SimDuration::minutes(4));
  EXPECT_EQ(t.epochStart(2), sim::SimTime::minutes(2));
}

TEST(ChurnTraceTest, EpochAtBoundaries) {
  const auto t = makeTinyTrace();
  EXPECT_EQ(t.epochAt(sim::SimTime::zero()), 0u);
  EXPECT_EQ(t.epochAt(sim::SimTime::seconds(59)), 0u);
  EXPECT_EQ(t.epochAt(sim::SimTime::minutes(1)), 1u);
  EXPECT_EQ(t.epochAt(sim::SimTime::minutes(3)), 3u);
  // Past the end clamps to the final epoch.
  EXPECT_EQ(t.epochAt(sim::SimTime::minutes(100)), 3u);
}

TEST(ChurnTraceTest, OnlineQueries) {
  const auto t = makeTinyTrace();
  EXPECT_TRUE(t.onlineInEpoch(0, 0));
  EXPECT_FALSE(t.onlineInEpoch(0, 1));
  EXPECT_TRUE(t.onlineAt(1, sim::SimTime::minutes(3)));
  EXPECT_FALSE(t.onlineAt(2, sim::SimTime::zero()));
  EXPECT_TRUE(t.onlineAt(2, sim::SimTime::minutes(3)));
}

TEST(ChurnTraceTest, OnlineHostsPerEpoch) {
  const auto t = makeTinyTrace();
  EXPECT_EQ(t.onlineCountInEpoch(0), 2u);
  EXPECT_EQ(t.onlineCountInEpoch(1), 1u);
  EXPECT_EQ(t.onlineHostsInEpoch(3), (std::vector<HostIndex>{1, 2}));
}

TEST(ChurnTraceTest, AvailabilityPrefixSums) {
  const auto t = makeTinyTrace();
  // Host 0 (1 0 1 0): availability after e epochs.
  EXPECT_DOUBLE_EQ(t.availabilityUpToEpoch(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.availabilityUpToEpoch(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(t.availabilityUpToEpoch(0, 2), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(t.availabilityUpToEpoch(0, 3), 0.5);
  EXPECT_DOUBLE_EQ(t.fullAvailability(1), 1.0);
  EXPECT_DOUBLE_EQ(t.fullAvailability(2), 0.25);
  // Epochs beyond the end clamp.
  EXPECT_DOUBLE_EQ(t.availabilityUpToEpoch(0, 99), 0.5);
}

TEST(ChurnTraceTest, AvailabilityAtTime) {
  const auto t = makeTinyTrace();
  EXPECT_DOUBLE_EQ(t.availabilityAt(0, sim::SimTime::seconds(30)), 1.0);
  EXPECT_DOUBLE_EQ(t.availabilityAt(0, sim::SimTime::minutes(1)), 0.5);
}

TEST(ChurnTraceTest, WindowedAvailability) {
  const auto t = makeTinyTrace();
  // Host 0 (1 0 1 0), window of 2 ending at epoch 2 -> epochs {1,2} -> 0.5.
  EXPECT_DOUBLE_EQ(t.windowedAvailability(0, 2, 2), 0.5);
  // Window larger than history clips to the start.
  EXPECT_DOUBLE_EQ(t.windowedAvailability(0, 1, 10), 0.5);
  EXPECT_THROW((void)t.windowedAvailability(0, 1, 0), std::invalid_argument);
}

TEST(ChurnTraceTest, OutOfRangeHostThrows) {
  const auto t = makeTinyTrace();
  EXPECT_THROW((void)t.onlineInEpoch(99, 0), std::out_of_range);
  EXPECT_THROW((void)t.availabilityUpToEpoch(99, 0), std::out_of_range);
}

}  // namespace
}  // namespace avmem::trace
