// The streaming Markov backend: determinism (same seed, same timeline,
// regardless of query order), stationary-mean convergence to p_up, and
// O(hosts) memory independent of the horizon.
#include "trace/markov_churn.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sim/random.hpp"
#include "trace/overnet_generator.hpp"

namespace avmem::trace {
namespace {

MarkovChurnConfig smallConfig(std::uint32_t epochs = 500,
                              std::uint64_t seed = 77) {
  MarkovChurnConfig cfg;
  cfg.horizonEpochs = epochs;
  cfg.seed = seed;
  return cfg;
}

TEST(MarkovChurnTest, SameSeedSameTimeline) {
  const std::vector<double> pUp{0.1, 0.3, 0.5, 0.8, 0.99};
  const MarkovChurnModel a(pUp, smallConfig());
  const MarkovChurnModel b(pUp, smallConfig());
  for (HostIndex h = 0; h < pUp.size(); ++h) {
    for (std::size_t e = 0; e < a.epochCount(); ++e) {
      ASSERT_EQ(a.onlineInEpoch(h, e), b.onlineInEpoch(h, e))
          << "host " << h << " epoch " << e;
    }
  }
}

TEST(MarkovChurnTest, DifferentSeedDifferentTimeline) {
  const std::vector<double> pUp(20, 0.5);
  const MarkovChurnModel a(pUp, smallConfig(500, 1));
  const MarkovChurnModel b(pUp, smallConfig(500, 2));
  std::size_t differences = 0;
  for (HostIndex h = 0; h < pUp.size(); ++h) {
    for (std::size_t e = 0; e < a.epochCount(); ++e) {
      differences += a.onlineInEpoch(h, e) != b.onlineInEpoch(h, e) ? 1 : 0;
    }
  }
  EXPECT_GT(differences, 0u);
}

TEST(MarkovChurnTest, AnswersDoNotDependOnQueryOrder) {
  const std::vector<double> pUp{0.2, 0.6, 0.9};
  const MarkovChurnConfig cfg = smallConfig(300, 123);

  // Reference: one forward pass over a fresh model.
  const MarkovChurnModel forward(pUp, cfg);
  std::vector<std::vector<bool>> expected(pUp.size());
  std::vector<std::vector<std::uint64_t>> expectedUp(pUp.size());
  for (HostIndex h = 0; h < pUp.size(); ++h) {
    for (std::size_t e = 0; e < cfg.horizonEpochs; ++e) {
      expected[h].push_back(forward.onlineInEpoch(h, e));
      expectedUp[h].push_back(forward.onlineEpochsThrough(h, e));
    }
  }

  // Reverse order, fresh model.
  const MarkovChurnModel reverse(pUp, cfg);
  for (HostIndex h = 0; h < pUp.size(); ++h) {
    for (std::size_t e = cfg.horizonEpochs; e-- > 0;) {
      ASSERT_EQ(reverse.onlineInEpoch(h, e), expected[h][e])
          << "host " << h << " epoch " << e;
      ASSERT_EQ(reverse.onlineEpochsThrough(h, e), expectedUp[h][e])
          << "host " << h << " epoch " << e;
    }
  }

  // Random access, fresh model.
  const MarkovChurnModel random(pUp, cfg);
  sim::Rng rng(5);
  for (int i = 0; i < 4000; ++i) {
    const auto h = static_cast<HostIndex>(rng.index(pUp.size()));
    const std::size_t e = rng.index(cfg.horizonEpochs);
    ASSERT_EQ(random.onlineInEpoch(h, e), expected[h][e])
        << "host " << h << " epoch " << e;
    ASSERT_EQ(random.onlineEpochsThrough(h, e), expectedUp[h][e])
        << "host " << h << " epoch " << e;
  }
}

TEST(MarkovChurnTest, MeanAvailabilityConvergesToPUp) {
  // Long horizon: the empirical online fraction must approach the
  // stationary parameter for low, mid, high, and near-always-on hosts.
  const std::vector<double> pUp{0.1, 0.3, 0.5, 0.7, 0.9, 0.98};
  const MarkovChurnModel model(pUp, smallConfig(20'000, 9));
  const std::size_t last = model.epochCount() - 1;
  for (HostIndex h = 0; h < pUp.size(); ++h) {
    const double empirical = model.availabilityUpToEpoch(h, last);
    EXPECT_NEAR(empirical, pUp[h], 0.03) << "host " << h;
    // fullAvailability reports the exact stationary value.
    EXPECT_DOUBLE_EQ(model.fullAvailability(h), pUp[h]);
  }
}

TEST(MarkovChurnTest, WindowedAvailabilityMatchesManualCount) {
  const std::vector<double> pUp{0.4};
  const MarkovChurnModel model(pUp, smallConfig(200, 3));
  for (const std::size_t e : {std::size_t{10}, std::size_t{64},
                              std::size_t{150}}) {
    for (const std::size_t w : {std::size_t{5}, std::size_t{64},
                                std::size_t{300}}) {
      const std::size_t first = (e + 1 >= w) ? e + 1 - w : 0;
      double manual = 0;
      for (std::size_t k = first; k <= e; ++k) {
        manual += model.onlineInEpoch(0, k) ? 1 : 0;
      }
      manual /= static_cast<double>(e + 1 - first);
      EXPECT_DOUBLE_EQ(model.windowedAvailability(0, e, w), manual)
          << "epoch " << e << " window " << w;
    }
  }
}

TEST(MarkovChurnTest, MemoryIsIndependentOfHorizon) {
  const std::vector<double> pUp(1000, 0.5);
  const MarkovChurnModel shortModel(pUp, smallConfig(100, 1));
  const MarkovChurnModel longModel(pUp, smallConfig(1'000'000, 1));
  EXPECT_EQ(shortModel.memoryFootprintBytes(),
            longModel.memoryFootprintBytes());
  // ~tens of bytes per host: 1M hosts stays well under the 100 MB budget.
  EXPECT_LT(longModel.memoryFootprintBytes() / pUp.size(), 100u);
}

TEST(MarkovChurnTest, OvernetMixtureMatchesGeneratorMarginal) {
  // The OvernetTraceConfig constructor draws the same per-host intrinsic
  // availabilities as the materialized generator (same fork, same order):
  // fullAvailability here equals the long-run mean the dense trace
  // converges to. Spot-check the marginal shape.
  OvernetTraceConfig cfg;
  cfg.hosts = 2000;
  cfg.epochs = 100;
  cfg.seed = 20070101;
  const MarkovChurnModel model(cfg);
  sim::Rng root(cfg.seed);
  sim::Rng mixRng = root.fork("intrinsic-availability");
  for (HostIndex h = 0; h < cfg.hosts; ++h) {
    EXPECT_DOUBLE_EQ(model.pUp(h), sampleIntrinsicAvailability(cfg, mixRng));
  }
}

TEST(MarkovChurnTest, RangeChecksMatchRecordedBackends) {
  const std::vector<double> pUp{0.5, 0.5};
  const MarkovChurnModel model(pUp, smallConfig(10, 1));
  EXPECT_THROW((void)model.onlineInEpoch(2, 0), std::out_of_range);
  EXPECT_THROW((void)model.onlineInEpoch(0, 10), std::out_of_range);
  EXPECT_THROW((void)model.fullAvailability(9), std::out_of_range);
  // Times past the horizon clamp, like a recorded trace's final state.
  EXPECT_NO_THROW((void)model.onlineAt(0, sim::SimDuration::days(400)));
}

TEST(MarkovChurnTest, ConcurrentQueriesMatchSerialAnswers) {
  // The parallel maintenance plan phase queries the model from many
  // threads at once; the per-host cursor is a relaxed atomic word, so
  // racing queries must stay data-race-free (ThreadSanitizer checks this
  // in CI) and return exactly the serial answers.
  std::vector<double> pUp;
  sim::Rng rng(404);
  for (int h = 0; h < 64; ++h) pUp.push_back(0.05 + 0.9 * rng.uniform());
  const MarkovChurnModel model(pUp, smallConfig(256));

  // Serial ground truth, computed on a fresh identical model so the
  // shared model's cursors start cold for the concurrent phase.
  const MarkovChurnModel reference(pUp, smallConfig(256));
  std::vector<std::uint8_t> online(64 * 256);
  std::vector<std::uint64_t> through(64 * 256);
  for (HostIndex h = 0; h < 64; ++h) {
    for (std::size_t e = 0; e < 256; ++e) {
      online[h * 256 + e] = reference.onlineInEpoch(h, e) ? 1 : 0;
      through[h * 256 + e] = reference.onlineEpochsThrough(h, e);
    }
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&model, &online, &through, &mismatches, t] {
      // Each thread queries every host in a different epoch pattern, so
      // threads collide on the same hosts while moving cursors forward,
      // backward, and randomly.
      sim::Rng order(1000 + t);
      for (int iter = 0; iter < 2000; ++iter) {
        const auto h = static_cast<HostIndex>(order.below(64));
        const auto e = static_cast<std::size_t>(order.below(256));
        if (model.onlineInEpoch(h, e) != (online[h * 256 + e] != 0) ||
            model.onlineEpochsThrough(h, e) != through[h * 256 + e]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(MarkovChurnTest, RejectsMalformedConfig) {
  EXPECT_THROW(MarkovChurnModel({}, smallConfig()), std::invalid_argument);
  EXPECT_THROW(MarkovChurnModel({0.5}, smallConfig(0)),
               std::invalid_argument);
  MarkovChurnConfig bad = smallConfig();
  bad.epochDuration = sim::SimDuration::zero();
  EXPECT_THROW(MarkovChurnModel({0.5}, bad), std::invalid_argument);
  bad = smallConfig();
  bad.meanSessionEpochs = 0.0;
  EXPECT_THROW(MarkovChurnModel({0.5}, bad), std::invalid_argument);
}

}  // namespace
}  // namespace avmem::trace
