#include "trace/overnet_generator.hpp"

#include <gtest/gtest.h>

#include "stats/summary.hpp"
#include "trace/trace_io.hpp"

#include <sstream>

namespace avmem::trace {
namespace {

TEST(OvernetGeneratorTest, PaperScaleDefaults) {
  OvernetTraceConfig cfg;  // defaults = paper scale
  cfg.hosts = 200;         // shrink population for test speed, keep epochs
  const auto t = generateOvernetTrace(cfg);
  EXPECT_EQ(t.hostCount(), 200u);
  EXPECT_EQ(t.epochCount(), 504u);  // 7 days at 20-minute epochs
  EXPECT_EQ(t.epochDuration(), sim::SimDuration::minutes(20));
}

TEST(OvernetGeneratorTest, DeterministicInSeed) {
  OvernetTraceConfig cfg;
  cfg.hosts = 50;
  cfg.epochs = 100;
  const auto a = generateOvernetTrace(cfg);
  const auto b = generateOvernetTrace(cfg);
  for (HostIndex h = 0; h < 50; ++h) {
    for (std::size_t e = 0; e < 100; ++e) {
      ASSERT_EQ(a.onlineInEpoch(h, e), b.onlineInEpoch(h, e));
    }
  }
  cfg.seed = 43;
  const auto c = generateOvernetTrace(cfg);
  std::size_t diffs = 0;
  for (HostIndex h = 0; h < 50; ++h) {
    for (std::size_t e = 0; e < 100; ++e) {
      diffs += (a.onlineInEpoch(h, e) != c.onlineInEpoch(h, e)) ? 1 : 0;
    }
  }
  EXPECT_GT(diffs, 100u);  // a different seed produces a different world
}

TEST(OvernetGeneratorTest, SkewMatchesOvernetCharacterization) {
  // Bhagwan et al.: ~50% of hosts have long-term availability below 0.3.
  OvernetTraceConfig cfg;
  cfg.hosts = 1442;
  const auto t = generateOvernetTrace(cfg);
  std::size_t below03 = 0;
  for (HostIndex h = 0; h < cfg.hosts; ++h) {
    if (t.fullAvailability(h) < 0.3) ++below03;
  }
  const double frac = static_cast<double>(below03) / cfg.hosts;
  EXPECT_NEAR(frac, 0.5, 0.08);
}

TEST(OvernetGeneratorTest, FullPopulationSpansAvailabilitySpectrum) {
  OvernetTraceConfig cfg;
  cfg.hosts = 1000;
  const auto t = generateOvernetTrace(cfg);
  stats::Summary s;
  for (HostIndex h = 0; h < cfg.hosts; ++h) s.add(t.fullAvailability(h));
  EXPECT_LT(s.min(), 0.1);
  EXPECT_GT(s.max(), 0.95);
  EXPECT_GT(s.mean(), 0.3);
  EXPECT_LT(s.mean(), 0.6);
}

TEST(OvernetGeneratorTest, StationaryMarkovTracksIntrinsicAvailability) {
  // With the mixture collapsed to a point mass, every host's measured
  // availability must concentrate around the intrinsic value.
  OvernetTraceConfig cfg;
  cfg.hosts = 60;
  cfg.epochs = 2000;
  cfg.diurnalAmplitude = 0.0;
  cfg.lowWeight = 1.0;
  cfg.lowMin = cfg.lowMax = 0.4;
  cfg.midWeight = cfg.highWeight = cfg.serverWeight = 0.0;
  const auto t = generateOvernetTrace(cfg);
  stats::Summary s;
  for (HostIndex h = 0; h < cfg.hosts; ++h) s.add(t.fullAvailability(h));
  EXPECT_NEAR(s.mean(), 0.4, 0.03);
}

TEST(OvernetGeneratorTest, SessionLengthsFollowMeanParameter) {
  // Mean online-run length must track meanSessionEpochs.
  OvernetTraceConfig cfg;
  cfg.hosts = 40;
  cfg.epochs = 3000;
  cfg.diurnalAmplitude = 0.0;
  cfg.lowWeight = 1.0;
  cfg.lowMin = cfg.lowMax = 0.5;
  cfg.midWeight = cfg.highWeight = cfg.serverWeight = 0.0;
  cfg.meanSessionEpochs = 4.0;
  const auto t = generateOvernetTrace(cfg);

  std::uint64_t runs = 0;
  std::uint64_t onEpochs = 0;
  for (HostIndex h = 0; h < cfg.hosts; ++h) {
    bool prev = false;
    for (std::size_t e = 0; e < cfg.epochs; ++e) {
      const bool on = t.onlineInEpoch(h, e);
      if (on) {
        ++onEpochs;
        if (!prev) ++runs;
      }
      prev = on;
    }
  }
  const double meanRun =
      static_cast<double>(onEpochs) / static_cast<double>(runs);
  EXPECT_NEAR(meanRun, 4.0, 0.5);
}

TEST(OvernetGeneratorTest, RejectsEmptyConfigs) {
  OvernetTraceConfig cfg;
  cfg.hosts = 0;
  EXPECT_THROW(generateOvernetTrace(cfg), std::invalid_argument);
  cfg.hosts = 10;
  cfg.epochs = 0;
  EXPECT_THROW(generateOvernetTrace(cfg), std::invalid_argument);
  cfg.epochs = 10;
  cfg.lowWeight = cfg.midWeight = cfg.highWeight = cfg.serverWeight = 0.0;
  EXPECT_THROW(generateOvernetTrace(cfg), std::invalid_argument);
}

TEST(TraceIoTest, RoundTripsThroughText) {
  OvernetTraceConfig cfg;
  cfg.hosts = 20;
  cfg.epochs = 50;
  const auto t = generateOvernetTrace(cfg);

  std::stringstream buf;
  saveTrace(buf, t);
  const auto loaded = loadTrace(buf);

  ASSERT_EQ(loaded.hostCount(), t.hostCount());
  ASSERT_EQ(loaded.epochCount(), t.epochCount());
  EXPECT_EQ(loaded.epochDuration(), t.epochDuration());
  for (HostIndex h = 0; h < t.hostCount(); ++h) {
    for (std::size_t e = 0; e < t.epochCount(); ++e) {
      ASSERT_EQ(loaded.onlineInEpoch(h, e), t.onlineInEpoch(h, e));
    }
  }
}

TEST(TraceIoTest, RejectsCorruptInput) {
  {
    std::stringstream s("NOT-A-TRACE\n");
    EXPECT_THROW(loadTrace(s), std::runtime_error);
  }
  {
    std::stringstream s("AVMEM-TRACE v1\nhosts 2 epochs 3 epoch_us 100\n101\n");
    EXPECT_THROW(loadTrace(s), std::runtime_error);  // truncated host list
  }
  {
    std::stringstream s(
        "AVMEM-TRACE v1\nhosts 1 epochs 3 epoch_us 100\n1x1\n");
    EXPECT_THROW(loadTrace(s), std::runtime_error);  // invalid character
  }
  {
    std::stringstream s(
        "AVMEM-TRACE v1\nhosts 1 epochs 3 epoch_us 100\n10\n");
    EXPECT_THROW(loadTrace(s), std::runtime_error);  // wrong epoch count
  }
  {
    std::stringstream s("AVMEM-TRACE v1\nhosts 0 epochs 3 epoch_us 100\n");
    EXPECT_THROW(loadTrace(s), std::runtime_error);  // empty population
  }
}

}  // namespace
}  // namespace avmem::trace
