#include "trace/trace_stats.hpp"

#include <gtest/gtest.h>

#include "trace/overnet_generator.hpp"

namespace avmem::trace {
namespace {

TEST(TraceStatsTest, HandComputableTinyTrace) {
  // Host 0: 1 1 0 0 1 1 (sessions 2,2; absence 2) — availability 4/6.
  // Host 1: 0 0 0 0 0 0 — availability 0.
  ChurnTrace t(
      {
          {1, 1, 0, 0, 1, 1},
          {0, 0, 0, 0, 0, 0},
      },
      sim::SimDuration::minutes(20));
  const auto s = characterizeTrace(t);

  EXPECT_DOUBLE_EQ(s.fractionBelow03, 0.5);  // host 1 below 0.3
  // Sessions: host0 {2, 2}; host1 none.
  EXPECT_EQ(s.sessionEpochs.count(), 2u);
  EXPECT_DOUBLE_EQ(s.sessionEpochs.mean(), 2.0);
  // Absences: host0 {2}; host1 {6}.
  EXPECT_EQ(s.absenceEpochs.count(), 2u);
  EXPECT_DOUBLE_EQ(s.absenceEpochs.mean(), 4.0);
  // Online population per epoch: 1 1 0 0 1 1 -> mean 2/3.
  EXPECT_NEAR(s.onlinePerEpoch.mean(), 2.0 / 3.0, 1e-12);
  // Trace shorter than a day: no diurnal profile.
  EXPECT_TRUE(s.diurnalProfile.empty());
  EXPECT_DOUBLE_EQ(s.diurnalSwing(), 1.0);
}

TEST(TraceStatsTest, SyntheticOvernetMatchesHeadlineNumbers) {
  OvernetTraceConfig cfg;
  cfg.hosts = 1442;
  const auto t = generateOvernetTrace(cfg);
  const auto s = characterizeTrace(t);

  // Bhagwan et al.: ~half the hosts below 0.3 availability.
  EXPECT_NEAR(s.fractionBelow03, 0.5, 0.08);
  // Mean session near the configured 3 epochs (1 hour).
  EXPECT_NEAR(s.sessionEpochs.mean(), cfg.meanSessionEpochs, 1.2);
  // A visible but moderate diurnal swing from the configured modulation.
  ASSERT_FALSE(s.diurnalProfile.empty());
  EXPECT_GT(s.diurnalSwing(), 1.02);
  EXPECT_LT(s.diurnalSwing(), 1.6);
  // Online population well below the full population at all times.
  EXPECT_LT(s.onlinePerEpoch.max(), 1442.0);
  EXPECT_GT(s.onlinePerEpoch.min(), 100.0);
}

TEST(TraceStatsTest, DiurnalAmplitudeZeroFlattensProfile) {
  OvernetTraceConfig cfg;
  cfg.hosts = 400;
  cfg.diurnalAmplitude = 0.0;
  const auto s = characterizeTrace(generateOvernetTrace(cfg));
  ASSERT_FALSE(s.diurnalProfile.empty());
  EXPECT_LT(s.diurnalSwing(), 1.15);  // statistical noise only
}

TEST(TraceStatsTest, MarginalHistogramSumsToHostCount) {
  OvernetTraceConfig cfg;
  cfg.hosts = 300;
  cfg.epochs = 100;
  const auto s = characterizeTrace(generateOvernetTrace(cfg));
  EXPECT_EQ(s.availabilityMarginal.totalCount(), 300u);
}

}  // namespace
}  // namespace avmem::trace
