#!/usr/bin/env python3
"""Fail on broken relative links in the repo's markdown files.

Checks every inline [text](target) link in *.md (excluding build trees):
external URLs and mailto are skipped, fragments are stripped, and the
remaining path must exist relative to the file that references it —
exactly how Markdown renderers resolve relative links (no repo-root
fallback). Exit 0 = all links resolve.
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

SKIP_DIRS = {"build", ".git", ".github"}
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def md_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        yield path


def check(root: Path) -> int:
    broken = []
    for md in md_files(root):
        text = md.read_text(encoding="utf-8")
        # Drop fenced code blocks: their brackets are code, not links.
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            base = root if path.startswith("/") else md.parent
            if not (base / path.lstrip("/")).exists():
                broken.append(f"{md.relative_to(root)}: broken link -> {target}")
    for line in broken:
        print(line, file=sys.stderr)
    print(f"checked {sum(1 for _ in md_files(root))} markdown files, "
          f"{len(broken)} broken links")
    return 1 if broken else 0


if __name__ == "__main__":
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    sys.exit(check(root))
