#!/usr/bin/env python3
"""Assert two scale_sweep --json outputs are stat-identical.

Usage: check_thread_invariance.py [--min-mean-degree X] A.json B.json

Parallel plan dispatch — and a warm-state checkpoint restore — must not
change any simulation-visible statistic; only wall-clock fields, the
reported thread count, and pipeline diagnostics may differ between runs.
CI runs the smoke sweep at threads=1 and threads=4 (and restored vs
fresh) and gates on this script.

Every per-point key must be classified: INVARIANT_KEYS are compared
exactly, IGNORED_KEYS are allowed to differ, and a key in neither set is
a loud failure — a new scale_sweep column must be triaged here before it
can ride through CI, otherwise a silently-added thread-variant (or
restore-variant) column would erode the gate.

--min-mean-degree X additionally gates Discovery convergence: every point
of both runs must report mean_degree >= X (the candidate-feed floor; a
regression that starves Discovery fails the smoke job even if both runs
starve identically).
"""
import json
import sys

INVARIANT_KEYS = (
    "n",
    "backend",
    "trace_backend",
    "seed",
    "shuffle_period_s",
    "shuffle_view_size",
    "shuffle_gossip_length",
    "feed_enabled",
    "feed_h_budget",
    "feed_v_budget",
    "model_mb",
    "warmup_sim_h",
    "events",
    "maint_timers",
    "completed_shuffles",
    "view_digest",
    "mean_degree",
    "hs_degree",
    "feed_candidates",
    "anycasts",
    "delivered_fraction",
)

# Wall-clock measurements, the knobs a comparison deliberately varies
# (thread count, dispatch mode), and pipeline diagnostics that depend on
# both. restore_s belongs here: one side of the checkpoint CI gate warms
# up fresh (restore_s = 0) while the other restores.
IGNORED_KEYS = frozenset(
    {
        "threads",
        "build_s",
        "warmup_s",
        "restore_s",
        "events_per_s",
        "plan_s",
        "commit_s",
        "plan_share",
        "plan_nodes_per_s",
        "pipeline_overlap_s",
        "plan_slot_p50_ms",
        "plan_slot_p99_ms",
        "pipelined_firings",
        "discarded_speculations",
        "batch_s",
    }
)


def check_points(a, b, min_mean_degree=None, out=sys.stderr):
    """Compare two point lists; returns the number of failures."""
    if len(a) != len(b):
        print(f"point count differs: {len(a)} vs {len(b)}", file=out)
        return 1
    failures = 0
    for i, (pa, pb) in enumerate(zip(a, b)):
        # Full schema coverage: any key neither compared nor explicitly
        # ignored fails — never let a new column slip past unclassified.
        for name, point in (("A", pa), ("B", pb)):
            unknown = sorted(
                k
                for k in point
                if k not in INVARIANT_KEYS and k not in IGNORED_KEYS
            )
            if unknown:
                print(
                    f"point {i} (run {name}): unclassified key(s) "
                    f"{', '.join(unknown)} — add each to INVARIANT_KEYS "
                    "or IGNORED_KEYS in tools/check_thread_invariance.py",
                    file=out,
                )
                failures += len(unknown)
        for key in INVARIANT_KEYS:
            # A key absent from either run is its own loud failure: a
            # silently-renamed or dropped JSON field must not read as
            # "no divergence" (nor crash with a bare KeyError).
            missing = [
                name
                for name, point in (("A", pa), ("B", pb))
                if key not in point
            ]
            if missing:
                print(
                    f"point {i}: invariant key '{key}' missing from "
                    f"run(s) {', '.join(missing)} — scale_sweep JSON "
                    "schema changed?",
                    file=out,
                )
                failures += 1
                continue
            if pa[key] != pb[key]:
                print(
                    f"point {i} ({pa.get('n', '?')} nodes): '{key}' "
                    f"diverged: {pa[key]} (threads={pa.get('threads', '?')}) "
                    f"vs {pb[key]} (threads={pb.get('threads', '?')})",
                    file=out,
                )
                failures += 1
    if min_mean_degree is not None:
        for i, p in enumerate(a + b):
            if "mean_degree" not in p:
                continue  # already reported as a missing invariant key
            if p["mean_degree"] < min_mean_degree:
                print(
                    f"point {i % len(a)} ({p['n']} nodes, "
                    f"threads={p['threads']}): mean_degree "
                    f"{p['mean_degree']} below the convergence floor "
                    f"{min_mean_degree}",
                    file=out,
                )
                failures += 1
    return failures


def main() -> int:
    args = sys.argv[1:]
    min_mean_degree = None
    if args and args[0] == "--min-mean-degree":
        if len(args) < 2:
            print(__doc__, file=sys.stderr)
            return 2
        min_mean_degree = float(args[1])
        args = args[2:]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    runs = []
    for path in args:
        with open(path, encoding="utf-8") as f:
            runs.append(json.load(f))
    a, b = (run["points"] for run in runs)
    failures = check_points(a, b, min_mean_degree)
    if failures:
        return 1
    msg = (
        f"{len(a)} point(s) stat-identical across threads="
        f"{a[0]['threads']} and threads={b[0]['threads']}"
    )
    if min_mean_degree is not None:
        msg += f"; mean_degree >= {min_mean_degree} everywhere"
    print(msg)
    return 0


if __name__ == "__main__":
    sys.exit(main())
