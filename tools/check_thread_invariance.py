#!/usr/bin/env python3
"""Assert two scale_sweep --json outputs are stat-identical.

Usage: check_thread_invariance.py A.json B.json

Parallel plan dispatch must not change any simulation-visible statistic —
only wall-clock fields (build_s, warmup_s, events_per_s, batch_s) and the
reported thread count may differ between runs. CI runs the smoke sweep at
threads=1 and threads=4 and gates on this script.
"""
import json
import sys

INVARIANT_KEYS = (
    "n",
    "backend",
    "model_mb",
    "warmup_sim_h",
    "events",
    "maint_timers",
    "completed_shuffles",
    "view_digest",
    "mean_degree",
    "anycasts",
    "delivered_fraction",
)


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    runs = []
    for path in sys.argv[1:3]:
        with open(path, encoding="utf-8") as f:
            runs.append(json.load(f))
    a, b = (run["points"] for run in runs)
    if len(a) != len(b):
        print(f"point count differs: {len(a)} vs {len(b)}", file=sys.stderr)
        return 1
    failures = 0
    for i, (pa, pb) in enumerate(zip(a, b)):
        for key in INVARIANT_KEYS:
            if pa[key] != pb[key]:
                print(
                    f"point {i} ({pa['n']} nodes): '{key}' diverged: "
                    f"{pa[key]} (threads={pa['threads']}) vs "
                    f"{pb[key]} (threads={pb['threads']})",
                    file=sys.stderr,
                )
                failures += 1
    if failures:
        return 1
    print(
        f"{len(a)} point(s) stat-identical across threads="
        f"{a[0]['threads']} and threads={b[0]['threads']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
