#!/usr/bin/env python3
"""Assert two bench --json outputs are stat-identical.

Usage: check_thread_invariance.py [--min-mean-degree X] A.json B.json

Parallel plan dispatch — and a warm-state checkpoint restore, and an
active fault campaign — must not change any simulation-visible
statistic; only wall-clock fields, the reported thread count, and
pipeline diagnostics may differ between runs. CI runs the smoke sweeps
at threads=1 and threads=4 (and restored vs fresh, and chaos campaigns
at two thread counts) and gates on this script.

The schema is selected by the run's top-level "bench" field
(scale_sweep or chaos_sweep; both runs must agree). Every per-point key
must be classified: invariant keys are compared exactly, ignored keys
are allowed to differ, and a key in neither set is a loud failure — a
new bench column must be triaged here before it can ride through CI,
otherwise a silently-added thread-variant (or restore-variant) column
would erode the gate.

--min-mean-degree X additionally gates Discovery convergence: every point
of both runs must report mean_degree >= X (the candidate-feed floor; a
regression that starves Discovery fails the smoke job even if both runs
starve identically).
"""
import json
import sys

INVARIANT_KEYS = (
    "n",
    "backend",
    "trace_backend",
    "seed",
    "shuffle_period_s",
    "shuffle_view_size",
    "shuffle_gossip_length",
    "feed_enabled",
    "feed_h_budget",
    "feed_v_budget",
    "model_mb",
    "warmup_sim_h",
    "events",
    "maint_timers",
    "completed_shuffles",
    "view_digest",
    "mean_degree",
    "hs_degree",
    "feed_candidates",
    "rejected",
    "dropped_offline",
    "ack_timeouts",
    "duplicated",
    "injected_drops",
    "anycasts",
    "delivered_fraction",
    # AVMON overlay columns: the substrate choice, estimate accuracy vs
    # the oracle, and ping-traffic billing are all simulation results —
    # zeros under the oracle backend, but never thread-variant.
    "avail_backend",
    "avmon_mae",
    "avmon_p99_err",
    "avmon_coverage",
    "pings_sent",
    "pings_delivered",
    "ping_bytes",
)

# Wall-clock measurements, the knobs a comparison deliberately varies
# (thread count, dispatch mode), and pipeline diagnostics that depend on
# both. restore_s belongs here: one side of the checkpoint CI gate warms
# up fresh (restore_s = 0) while the other restores.
IGNORED_KEYS = frozenset(
    {
        "threads",
        "build_s",
        "warmup_s",
        "restore_s",
        "events_per_s",
        "plan_s",
        "commit_s",
        "plan_share",
        "plan_nodes_per_s",
        "pipeline_overlap_s",
        "plan_slot_p50_ms",
        "plan_slot_p99_ms",
        "pipelined_firings",
        "discarded_speculations",
        "batch_s",
    }
)

# chaos_sweep samples: everything simulation-visible, nothing wall-clock.
# A fault campaign must be bit-identical across thread counts and
# dispatch modes — that is the whole point of the deterministic injector.
CHAOS_INVARIANT_KEYS = (
    "t_h",
    "delivered",
    "mean_degree",
    "view_digest",
    "injected_drops",
    "duplicated",
    "ack_timeouts",
    "dropped_offline",
    "attack_sweeps",
)
CHAOS_IGNORED_KEYS = frozenset()

# Top-level chaos_sweep fields that must also agree between the two runs
# (reconvergence time is a simulation-visible result, not a wall clock).
CHAOS_TOP_LEVEL_KEYS = (
    "scenario",
    "seed",
    "floor",
    "last_stage_end_h",
    "reconverged_h",
)

# "bench" field -> (invariant keys, ignored keys) for the per-point diff.
SCHEMAS = {
    "scale_sweep": (INVARIANT_KEYS, IGNORED_KEYS),
    "chaos_sweep": (CHAOS_INVARIANT_KEYS, CHAOS_IGNORED_KEYS),
}


def check_points(a, b, min_mean_degree=None, out=sys.stderr,
                 invariant_keys=INVARIANT_KEYS, ignored_keys=IGNORED_KEYS):
    """Compare two point lists; returns the number of failures."""
    INVARIANT_KEYS = invariant_keys  # noqa: N806 — keep body readable
    IGNORED_KEYS = ignored_keys  # noqa: N806
    if len(a) != len(b):
        print(f"point count differs: {len(a)} vs {len(b)}", file=out)
        return 1
    failures = 0
    for i, (pa, pb) in enumerate(zip(a, b)):
        # Full schema coverage: any key neither compared nor explicitly
        # ignored fails — never let a new column slip past unclassified.
        for name, point in (("A", pa), ("B", pb)):
            unknown = sorted(
                k
                for k in point
                if k not in INVARIANT_KEYS and k not in IGNORED_KEYS
            )
            if unknown:
                print(
                    f"point {i} (run {name}): unclassified key(s) "
                    f"{', '.join(unknown)} — add each to INVARIANT_KEYS "
                    "or IGNORED_KEYS in tools/check_thread_invariance.py",
                    file=out,
                )
                failures += len(unknown)
        for key in INVARIANT_KEYS:
            # A key absent from either run is its own loud failure: a
            # silently-renamed or dropped JSON field must not read as
            # "no divergence" (nor crash with a bare KeyError).
            missing = [
                name
                for name, point in (("A", pa), ("B", pb))
                if key not in point
            ]
            if missing:
                print(
                    f"point {i}: invariant key '{key}' missing from "
                    f"run(s) {', '.join(missing)} — scale_sweep JSON "
                    "schema changed?",
                    file=out,
                )
                failures += 1
                continue
            if pa[key] != pb[key]:
                print(
                    f"point {i} ({pa.get('n', '?')} nodes): '{key}' "
                    f"diverged: {pa[key]} (threads={pa.get('threads', '?')}) "
                    f"vs {pb[key]} (threads={pb.get('threads', '?')})",
                    file=out,
                )
                failures += 1
    if min_mean_degree is not None:
        for i, p in enumerate(a + b):
            if "mean_degree" not in p:
                continue  # already reported as a missing invariant key
            if p["mean_degree"] < min_mean_degree:
                print(
                    f"point {i % len(a)} ({p.get('n', '?')} nodes, "
                    f"threads={p.get('threads', '?')}): mean_degree "
                    f"{p['mean_degree']} below the convergence floor "
                    f"{min_mean_degree}",
                    file=out,
                )
                failures += 1
    return failures


def check_runs(run_a, run_b, min_mean_degree=None, out=sys.stderr):
    """Full-run comparison: schema selection by "bench" plus the
    per-point diff (and, for chaos_sweep, the top-level reconvergence
    fields). Returns the number of failures."""
    bench_a = run_a.get("bench", "scale_sweep")
    bench_b = run_b.get("bench", "scale_sweep")
    if bench_a != bench_b:
        print(f"bench mismatch: {bench_a} vs {bench_b}", file=out)
        return 1
    if bench_a not in SCHEMAS:
        print(
            f"unknown bench '{bench_a}' — add a schema to "
            "tools/check_thread_invariance.py",
            file=out,
        )
        return 1
    invariant, ignored = SCHEMAS[bench_a]
    failures = check_points(
        run_a["points"],
        run_b["points"],
        min_mean_degree=min_mean_degree,
        out=out,
        invariant_keys=invariant,
        ignored_keys=ignored,
    )
    if bench_a == "chaos_sweep":
        for key in CHAOS_TOP_LEVEL_KEYS:
            missing = [
                name
                for name, run in (("A", run_a), ("B", run_b))
                if key not in run
            ]
            if missing:
                print(
                    f"top-level key '{key}' missing from run(s) "
                    f"{', '.join(missing)} — chaos_sweep JSON schema "
                    "changed?",
                    file=out,
                )
                failures += 1
                continue
            if run_a[key] != run_b[key]:
                print(
                    f"top-level '{key}' diverged: {run_a[key]} vs "
                    f"{run_b[key]}",
                    file=out,
                )
                failures += 1
    return failures


def main() -> int:
    args = sys.argv[1:]
    min_mean_degree = None
    if args and args[0] == "--min-mean-degree":
        if len(args) < 2:
            print(__doc__, file=sys.stderr)
            return 2
        min_mean_degree = float(args[1])
        args = args[2:]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    runs = []
    for path in args:
        with open(path, encoding="utf-8") as f:
            runs.append(json.load(f))
    failures = check_runs(runs[0], runs[1], min_mean_degree)
    if failures:
        return 1

    def threads_of(run):
        # scale_sweep reports threads per point; chaos_sweep top-level.
        points = run.get("points", [])
        if points and "threads" in points[0]:
            return points[0]["threads"]
        return run.get("threads", "?")

    n_points = len(runs[0]["points"])
    msg = (
        f"{n_points} point(s) stat-identical across threads="
        f"{threads_of(runs[0])} and threads={threads_of(runs[1])}"
    )
    if min_mean_degree is not None:
        msg += f"; mean_degree >= {min_mean_degree} everywhere"
    print(msg)
    return 0


if __name__ == "__main__":
    sys.exit(main())
