#!/usr/bin/env python3
"""Selftest for check_thread_invariance.py's key-schema contract.

Runs as a ctest entry (check_thread_invariance_selftest). The properties
pinned down here are the ones CI leans on:

  * equal runs pass, including keys in the ignore list differing;
  * a diverged invariant key fails;
  * a missing invariant key fails (schema drift is loud);
  * an UNCLASSIFIED key fails — every new scale_sweep column must be
    sorted into INVARIANT_KEYS or IGNORED_KEYS by hand;
  * restore_s / wall-clock / pipeline keys are in the ignore list, so a
    checkpoint-restored run diffs clean against a fresh warm-up.
"""
import io
import sys
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from check_thread_invariance import (  # noqa: E402
    CHAOS_IGNORED_KEYS,
    CHAOS_INVARIANT_KEYS,
    IGNORED_KEYS,
    INVARIANT_KEYS,
    check_points,
    check_runs,
)


def point(**overrides):
    """A fully-populated scale_sweep point with sane defaults."""
    p = {
        "n": 2000,
        "backend": "markov",
        "trace_backend": "markov",
        "seed": 20070101,
        "threads": 1,
        "shuffle_period_s": 60,
        "shuffle_view_size": 64,
        "shuffle_gossip_length": 32,
        "feed_enabled": True,
        "feed_h_budget": 24,
        "feed_v_budget": 16,
        "model_mb": 1.5,
        "build_s": 0.4,
        "warmup_s": 2.0,
        "restore_s": 0.0,
        "warmup_sim_h": 0.5,
        "events": 123456,
        "events_per_s": 61728.0,
        "plan_s": 1.0,
        "commit_s": 0.5,
        "plan_share": 0.5,
        "plan_nodes_per_s": 1000.0,
        "pipeline_overlap_s": 0.1,
        "plan_slot_p50_ms": 0.2,
        "plan_slot_p99_ms": 0.9,
        "pipelined_firings": 10,
        "discarded_speculations": 1,
        "maint_timers": 48,
        "completed_shuffles": 999,
        "view_digest": 0xDEADBEEF,
        "mean_degree": 21.5,
        "hs_degree": 9.75,
        "feed_candidates": 5000,
        "rejected": 12,
        "dropped_offline": 340,
        "ack_timeouts": 7,
        "duplicated": 0,
        "injected_drops": 0,
        "anycasts": 10,
        "delivered_fraction": 1.0,
        "batch_s": 0.01,
        "avail_backend": "avmon",
        "avmon_mae": 0.0123,
        "avmon_p99_err": 0.0456,
        "avmon_coverage": 1.0,
        "pings_sent": 88000,
        "pings_delivered": 80000,
        "ping_bytes": 3040000,
    }
    p.update(overrides)
    return p


def chaos_point(**overrides):
    """A fully-populated chaos_sweep sample with sane defaults."""
    p = {
        "t_h": 2.5,
        "delivered": 0.95,
        "mean_degree": 21.5,
        "view_digest": 0xDEADBEEF,
        "injected_drops": 4200,
        "duplicated": 800,
        "ack_timeouts": 95,
        "dropped_offline": 1234,
        "attack_sweeps": 12,
    }
    p.update(overrides)
    return p


def chaos_run(points, **overrides):
    """A chaos_sweep top-level run record."""
    r = {
        "bench": "chaos_sweep",
        "scenario": "chaos-outage",
        "seed": 20070101,
        "threads": 1,
        "floor": 0.9,
        "last_stage_end_h": 2.9,
        "reconverged_h": 3.0,
        "points": points,
    }
    r.update(overrides)
    return r


def run_check(a, b, **kwargs):
    out = io.StringIO()
    failures = check_points(a, b, out=out, **kwargs)
    return failures, out.getvalue()


class SchemaCoverageTest(unittest.TestCase):
    def test_every_default_key_is_classified(self):
        # The fixture mirrors the real scale_sweep schema; if it drifts
        # out of classification the checker itself would fail in CI.
        for key in point():
            self.assertTrue(
                key in INVARIANT_KEYS or key in IGNORED_KEYS,
                f"fixture key '{key}' unclassified",
            )

    def test_no_key_is_both_invariant_and_ignored(self):
        both = set(INVARIANT_KEYS) & IGNORED_KEYS
        self.assertFalse(both, f"keys in both lists: {both}")

    def test_identical_runs_pass(self):
        failures, _ = run_check([point()], [point()])
        self.assertEqual(failures, 0)

    def test_ignored_keys_may_differ(self):
        # The checkpoint gate's exact shape: one side restored (restore_s
        # > 0, warmup_s = 0, different thread count), same statistics.
        fresh = point(warmup_s=40.0, restore_s=0.0, threads=1)
        restored = point(
            warmup_s=0.0,
            restore_s=3.5,
            threads=8,
            events_per_s=0.0,
            pipelined_firings=0,
        )
        failures, _ = run_check([fresh], [restored])
        self.assertEqual(failures, 0)

    def test_diverged_invariant_key_fails(self):
        failures, log = run_check(
            [point()], [point(view_digest=0xBADF00D)]
        )
        self.assertEqual(failures, 1)
        self.assertIn("view_digest", log)

    def test_missing_invariant_key_fails(self):
        b = point()
        del b["events"]
        failures, log = run_check([point()], [b])
        self.assertEqual(failures, 1)
        self.assertIn("missing", log)

    def test_unclassified_key_fails_loudly(self):
        failures, log = run_check(
            [point(brand_new_column=7)], [point()]
        )
        self.assertGreaterEqual(failures, 1)
        self.assertIn("brand_new_column", log)
        self.assertIn("unclassified", log)

    def test_point_count_mismatch_fails(self):
        failures, _ = run_check([point(), point()], [point()])
        self.assertEqual(failures, 1)

    def test_mean_degree_floor(self):
        failures, log = run_check(
            [point(mean_degree=3.0)],
            [point(mean_degree=3.0)],
            min_mean_degree=10.0,
        )
        self.assertEqual(failures, 2)  # both runs below the floor
        self.assertIn("convergence floor", log)

    def test_restore_s_is_ignored_key(self):
        self.assertIn("restore_s", IGNORED_KEYS)
        self.assertNotIn("restore_s", INVARIANT_KEYS)

    def test_wire_failure_counters_are_invariant(self):
        # The fault-injection counters must be thread-invariant: a
        # campaign that drops different messages at different thread
        # counts is a determinism bug, not noise.
        for key in (
            "rejected",
            "dropped_offline",
            "ack_timeouts",
            "duplicated",
            "injected_drops",
        ):
            self.assertIn(key, INVARIANT_KEYS)

    def test_avmon_accuracy_columns_are_invariant(self):
        # AVMON accuracy and ping-overhead columns are simulation
        # results: a thread count changing the MAE or the ping bill is a
        # plan/commit determinism bug.
        for key in (
            "avail_backend",
            "avmon_mae",
            "avmon_p99_err",
            "avmon_coverage",
            "pings_sent",
            "pings_delivered",
            "ping_bytes",
        ):
            self.assertIn(key, INVARIANT_KEYS)
        failures, log = run_check(
            [point()], [point(avmon_mae=0.9)]
        )
        self.assertEqual(failures, 1)
        self.assertIn("avmon_mae", log)


class ChaosSchemaTest(unittest.TestCase):
    def run_runs(self, a, b, **kwargs):
        out = io.StringIO()
        failures = check_runs(a, b, out=out, **kwargs)
        return failures, out.getvalue()

    def test_every_chaos_fixture_key_is_classified(self):
        for key in chaos_point():
            self.assertTrue(
                key in CHAOS_INVARIANT_KEYS or key in CHAOS_IGNORED_KEYS,
                f"chaos fixture key '{key}' unclassified",
            )

    def test_identical_chaos_runs_pass(self):
        a = chaos_run([chaos_point()])
        b = chaos_run([chaos_point()], threads=8)  # threads may differ
        failures, _ = self.run_runs(a, b)
        self.assertEqual(failures, 0)

    def test_diverged_chaos_sample_fails(self):
        a = chaos_run([chaos_point()])
        b = chaos_run([chaos_point(injected_drops=9999)])
        failures, log = self.run_runs(a, b)
        self.assertEqual(failures, 1)
        self.assertIn("injected_drops", log)

    def test_diverged_reconvergence_fails(self):
        # Time-to-reconvergence is a simulation result: two thread
        # counts disagreeing on it is a loud failure.
        a = chaos_run([chaos_point()])
        b = chaos_run([chaos_point()], reconverged_h=3.5)
        failures, log = self.run_runs(a, b)
        self.assertEqual(failures, 1)
        self.assertIn("reconverged_h", log)

    def test_bench_mismatch_fails(self):
        a = chaos_run([chaos_point()])
        b = {"bench": "scale_sweep", "points": [point()]}
        failures, log = self.run_runs(a, b)
        self.assertEqual(failures, 1)
        self.assertIn("bench mismatch", log)

    def test_unknown_bench_fails(self):
        a = {"bench": "mystery_sweep", "points": []}
        failures, log = self.run_runs(a, dict(a))
        self.assertEqual(failures, 1)
        self.assertIn("mystery_sweep", log)


if __name__ == "__main__":
    unittest.main()
