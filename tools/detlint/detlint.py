#!/usr/bin/env python3
"""detlint: determinism & plan-purity static analysis for the AVMEM tree.

Every guarantee the simulator makes — bit-identical runs at any thread
count, in both dispatch modes, and across checkpoint/restore — rests on
contracts that used to live only in review comments and expensive runtime
matrix jobs. detlint makes them static, enforced per commit:

  plan-purity      Plan-phase functions (``plan*`` methods, producers into
                   ``MaintenancePlan`` lanes, worker-pool plan callbacks)
                   must be ``const`` or write only their own lane buffer,
                   and must never touch ``Network::send*``-family APIs.
  nondet-source    ``std::rand``, ``std::random_device``, ``time()``,
                   ``std::chrono::system_clock`` and default-seeded
                   ``<random>`` engines are banned everywhere; all
                   randomness flows from ``sim::Rng``.
  unordered-iter   Iterating an ``unordered_map``/``unordered_set`` is
                   banned: iteration order is library/insertion dependent
                   and must never reach committed state, snapshot bytes or
                   ``--json`` stats. Point queries (find/emplace/count)
                   are fine.
  unordered-state  Declaring an unordered container as long-lived state
                   (a class member) requires a written justification that
                   its ordering never escapes.
  rng-stream       Inside plan-phase functions all randomness must come
                   from counter-based ``Rng::stream(seed, salt, seq)``:
                   raw ``Rng`` construction, ``fork()`` and sequential
                   draws from member generators are flagged.
  ckpt-pairing     For every ``write<X>``/``read<X>`` serialization helper
                   pair, the ordered primitive ledger (u8/u32/u64/i64/f64/
                   raw<T> call sites) must match; every field of a
                   ``SavedState`` struct must be referenced on both the
                   save and the restore path. Adding a member to
                   ``ShuffleChannel::SavedState`` without updating the
                   CHAN section fails this lint, not a 77 MB artifact
                   diff three PRs later.

Engines: with the libclang python bindings installed (``clang.cindex``)
function facts come from the clang AST; without them a self-contained
lexer + structural parser produces the same facts (this repo's CI images
and dev boxes do not all ship libclang, so the builtin engine is the
deterministic reference and the selftest runs against it). ``--engine
auto`` prefers libclang and falls back loudly.

Suppressions: ``// detlint: allow(<check>) <justification>`` on the same
line or the line above. The justification is mandatory; a bare allow()
does not suppress. Unused suppressions are themselves findings, so stale
allows cannot accumulate.

Exit status: 0 = no unsuppressed findings, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

# --------------------------------------------------------------------------
# Check registry
# --------------------------------------------------------------------------

CHECKS = {
    "plan-purity": (
        "plan-phase functions must be read-only against shared state "
        "(const or lane-buffer writers) and must not send on the network"
    ),
    "nondet-source": (
        "banned nondeterminism source (std::rand, random_device, time(), "
        "system_clock, default-seeded <random> engine)"
    ),
    "unordered-iter": (
        "iteration over an unordered container (order is implementation- "
        "and insertion-dependent; must never reach committed state, "
        "snapshot bytes, or stats output)"
    ),
    "unordered-state": (
        "unordered container held as long-lived state; justify why its "
        "ordering never escapes (point queries only)"
    ),
    "rng-stream": (
        "plan-phase randomness must be counter-based Rng::stream(seed, "
        "salt, seq); raw construction, fork() and member-generator draws "
        "are order-dependent"
    ),
    "ckpt-pairing": (
        "checkpoint save/restore ledgers disagree (write/read primitive "
        "sequences differ, or a SavedState field is not serialized on "
        "both paths)"
    ),
    "unused-allow": (
        "a detlint allow() comment suppressed nothing; remove it or fix "
        "the check name"
    ),
}

DEFAULT_PATHS = ("src", "bench")
SOURCE_EXTS = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h"}

# --------------------------------------------------------------------------
# Findings
# --------------------------------------------------------------------------


@dataclasses.dataclass
class Finding:
    path: str
    line: int
    check: str
    message: str
    suppressed: bool = False
    justification: str = ""

    def text(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}: [{self.check}]{tag} {self.message}"

    def as_json(self) -> dict:
        return dataclasses.asdict(self)


# --------------------------------------------------------------------------
# Lexing: comment/string blanking + suppression harvest
# --------------------------------------------------------------------------


@dataclasses.dataclass
class Suppression:
    line: int           # line the comment sits on (1-based)
    checks: Tuple[str, ...]
    justification: str
    covers: Tuple[int, ...]  # line numbers this suppression applies to
    used: bool = False


_ALLOW_RE = re.compile(
    r"detlint:\s*allow\(\s*([\w-]+(?:\s*,\s*[\w-]+)*)\s*\)\s*(.*)")


def blank_noncode(text: str) -> Tuple[str, List[Tuple[int, str, bool]]]:
    """Blank comments and string/char literal contents with spaces.

    Returns (code, comments) where code has identical length and line
    structure, and comments is [(line_no, comment_text, line_had_code)].
    """
    out = list(text)
    comments: List[Tuple[int, str, bool]] = []
    n = len(text)
    i = 0
    line = 1
    line_had_code = False

    def blank(a: int, b: int) -> None:
        for k in range(a, b):
            if out[k] != "\n":
                out[k] = " "

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            line_had_code = False
            i += 1
            continue
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            comments.append((line, text[i:j], line_had_code))
            blank(i, j)
            i = j
            continue
        if c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            comments.append((line, text[i:j], line_had_code))
            blank(i, j)
            line += text.count("\n", i, j)
            line_had_code = False
            i = j
            continue
        if c == '"':
            # Raw string literal? Look back for R / u8R / LR / uR / UR.
            m = re.search(r'(?:u8|[uUL])?R$', text[max(0, i - 3):i])
            if m:
                dend = text.find("(", i)
                if dend != -1:
                    delim = text[i + 1:dend]
                    close = ')' + delim + '"'
                    j = text.find(close, dend)
                    j = n if j == -1 else j + len(close)
                    blank(i + 1, j - 1)
                    line += text.count("\n", i, j)
                    i = j
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                j += 1
            j = min(j + 1, n)
            blank(i + 1, j - 1)
            i = j
            line_had_code = True
            continue
        if c == "'":
            prev = text[i - 1] if i > 0 else ""
            if prev.isdigit() or (prev.isalpha() and i + 1 < n and
                                  text[i + 1].isalnum() and
                                  prev not in "uUL"):
                # digit separator (1'000) — not a char literal
                i += 1
                continue
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            j = min(j + 1, n)
            blank(i + 1, j - 1)
            i = j
            line_had_code = True
            continue
        if not c.isspace():
            line_had_code = True
        i += 1
    return "".join(out), comments


def harvest_suppressions(
        comments: List[Tuple[int, str, bool]],
        code_lines: List[str]) -> List[Suppression]:
    sups: List[Suppression] = []
    for line, comment, had_code in comments:
        m = _ALLOW_RE.search(comment)
        if not m:
            continue
        checks = tuple(c.strip() for c in m.group(1).split(","))
        justification = m.group(2).strip().rstrip("*/").strip()
        covers = [line]
        if not had_code:
            # Standalone comment line: covers the next line with code.
            for k in range(line, len(code_lines)):
                if code_lines[k].strip():
                    covers.append(k + 1)
                    break
        sups.append(Suppression(line, checks, justification, tuple(covers)))
    return sups


# --------------------------------------------------------------------------
# Facts: functions, classes, members
# --------------------------------------------------------------------------


@dataclasses.dataclass
class FunctionFact:
    name: str              # unqualified
    qualname: str          # Class::name when known
    cls: str               # enclosing/owning class ("" for free functions)
    params: str            # parameter list text
    is_const: bool
    line: int              # 1-based line of the header
    body: str              # body text (blanked code), braces included
    body_line: int         # 1-based line the body starts on


@dataclasses.dataclass
class MemberFact:
    cls: str
    name: str
    type_text: str
    line: int


@dataclasses.dataclass
class FileFacts:
    path: Path
    rel: str
    text: str                      # raw text
    code: str                      # blanked code, same offsets
    code_lines: List[str]
    suppressions: List[Suppression]
    functions: List[FunctionFact]
    members: List[MemberFact]
    engine: str = "builtin"

    def line_of(self, offset: int) -> int:
        return self.code.count("\n", 0, offset) + 1


_QUALIFIER_TOKENS = {"const", "noexcept", "override", "final", "mutable",
                     "try", "&", "&&"}

_SCOPE_KEY_RE = re.compile(
    r"\b(namespace|class|struct|union|enum)\b(?:\s+(?:class|struct)\b)?"
    r"(?:\s+(?:alignas\s*\([^)]*\)|\[\[[^\]]*\]\]))*"
    r"\s*([A-Za-z_]\w*)?")


def _match_back_paren(code: str, close: int) -> int:
    """Index of the '(' matching code[close] == ')' (or -1)."""
    depth = 0
    for k in range(close, -1, -1):
        if code[k] == ")":
            depth += 1
        elif code[k] == "(":
            depth -= 1
            if depth == 0:
                return k
    return -1


def _match_fwd(code: str, open_idx: int, open_c: str, close_c: str) -> int:
    depth = 0
    for k in range(open_idx, len(code)):
        if code[k] == open_c:
            depth += 1
        elif code[k] == close_c:
            depth -= 1
            if depth == 0:
                return k
    return -1


def _segment_function_header(
        seg: str) -> Optional[Tuple[str, str, bool]]:
    """Parse a pre-'{' segment as a function header.

    Returns (name, params, is_const) or None. Handles constructor
    initializer lists (``Ctor(args) : a_(x), b_{y}``) by taking the first
    top-level parenthesized group as the parameter list.
    """
    # Find the first '(' at angle/paren depth 0 preceded by an identifier.
    depth_p = depth_a = 0
    first_open = -1
    k = 0
    while k < len(seg):
        ch = seg[k]
        if ch == "(":
            if depth_p == 0 and depth_a == 0:
                m = re.search(r"(~?[A-Za-z_][\w]*)\s*$",
                              seg[:k])
                if m and m.group(1) not in (
                        "if", "for", "while", "switch", "return",
                        "sizeof", "alignof", "decltype", "catch"):
                    first_open = k
                    break
            depth_p += 1
        elif ch == ")":
            depth_p -= 1
        elif ch == "<":
            depth_a += 1
        elif ch == ">":
            depth_a = max(0, depth_a - 1)
        k += 1
    if first_open == -1:
        return None
    close = _match_fwd(seg, first_open, "(", ")")
    if close == -1:
        return None
    params = seg[first_open + 1:close]
    # Name: longest qualified identifier ending right before '('.
    m = re.search(r"((?:[A-Za-z_]\w*\s*::\s*)*~?[A-Za-z_]\w*"
                  r"(?:\s*<[^<>]*>)?)\s*$", seg[:first_open])
    if not m:
        return None
    name = re.sub(r"\s+", "", m.group(1))
    trailer = seg[close + 1:]
    # Trailer may be qualifiers, a trailing return type, an initializer
    # list (": a_(x), b_{y}") or "= delete/default" (no body follows then,
    # but those end with ';' so we never get here).
    stripped = trailer.strip()
    is_const = bool(re.match(r"^const\b", stripped)) or \
        bool(re.search(r"\bconst\b(?!\s*[\w&*<])",
                       re.sub(r"->.*$", "", stripped)))
    if "=" in re.sub(r"(->.*$)|(:\s*.*$)", "", stripped):
        return None  # assignment/initializer, not a function header
    return name, params, is_const


def _builtin_extract(path: Path, rel: str) -> FileFacts:
    text = path.read_text(encoding="utf-8", errors="replace")
    code, comments = blank_noncode(text)
    code_lines = code.split("\n")
    sups = harvest_suppressions(comments, code_lines)

    functions: List[FunctionFact] = []
    members: List[MemberFact] = []

    # Scope walk: classify every top-level-ish '{'.
    # stack entries: (kind, name, brace_open_idx)
    stack: List[Tuple[str, str, int]] = []
    seg_start = 0
    i = 0
    n = len(code)

    def cls_path() -> str:
        names = [nm for kd, nm, _ in stack if kd in ("class",) and nm]
        return "::".join(names)

    def scan_members(body_a: int, body_b: int, cls: str) -> None:
        body = code[body_a:body_b]
        # Depth map: member declarations live at brace depth 0 of the
        # class body; anything deeper is a method body or a nested type
        # (scanned separately when its own brace closes).
        depth_at = [0] * len(body)
        d = 0
        for k, ch in enumerate(body):
            if ch == "{":
                d += 1
            elif ch == "}":
                d = max(0, d - 1)
            depth_at[k] = d if ch != "{" else d - 1
        for m in re.finditer(
                r"(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<",
                body):
            if depth_at[m.start()] != 0:
                continue
            close = _match_fwd(body, body.find("<", m.start()), "<", ">")
            if close == -1:
                continue
            rest = body[close + 1:]
            vm = re.match(r"\s*([A-Za-z_]\w*)\s*(?:;|=|\{)", rest)
            if not vm:
                continue
            line = code.count("\n", 0, body_a + m.start()) + 1
            members.append(MemberFact(
                cls, vm.group(1), body[m.start():close + 1], line))

    while i < n:
        c = code[i]
        if c == ";" and not stack or (c == ";" and stack and
                                      stack[-1][0] != "function"):
            seg_start = i + 1
            i += 1
            continue
        if c == "{":
            in_function = any(k == "function" for k, _, _ in stack)
            if in_function:
                stack.append(("block", "", i))
                i += 1
                seg_start = i
                continue
            seg = code[seg_start:i]
            km = None
            for m in _SCOPE_KEY_RE.finditer(seg):
                km = m  # last scope keyword in the segment wins
            header = _segment_function_header(seg)
            if km and km.group(1) == "namespace" and header is None:
                stack.append(("namespace", km.group(2) or "", i))
            elif km and km.group(1) in ("class", "struct", "union") and (
                    header is None or
                    # "struct Foo {" with no parens, or the keyword comes
                    # after any parens (e.g. alignas) — treat as a class.
                    km.start() > seg.rfind(")")):
                stack.append(("class", km.group(2) or "", i))
            elif km and km.group(1) == "enum":
                stack.append(("enum", km.group(2) or "", i))
            elif header is not None:
                name, params, is_const = header
                uq = name.split("::")[-1]
                owner = cls_path()
                if "::" in name:
                    owner = name.rsplit("::", 1)[0]
                qual = f"{owner}::{uq}" if owner else uq
                functions.append(FunctionFact(
                    name=uq, qualname=qual, cls=owner, params=params,
                    is_const=is_const,
                    line=code.count("\n", 0, seg_start + len(seg) -
                                    len(seg.lstrip())) + 1,
                    body="",  # filled when the brace closes
                    body_line=code.count("\n", 0, i) + 1))
                stack.append(("function", name, i))
            else:
                # Braced initializer at class/namespace scope (member
                # default init, array init) — skip it wholesale.
                j = _match_fwd(code, i, "{", "}")
                if j == -1:
                    j = n - 1
                i = j + 1
                seg_start = i
                continue
            i += 1
            seg_start = i
            continue
        if c == "}":
            if stack:
                kind, name, open_idx = stack.pop()
                if kind == "function":
                    # attach body to the most recent matching function
                    for f in reversed(functions):
                        if f.body == "" and f.body_line == \
                                code.count("\n", 0, open_idx) + 1:
                            f.body = code[open_idx:i + 1]
                            break
                elif kind == "class":
                    cls = "::".join(
                        [nm for kd, nm, _ in stack if kd == "class" and nm]
                        + ([name] if name else []))
                    scan_members(open_idx + 1, i, cls)
            i += 1
            seg_start = i
            continue
        i += 1

    # Unclosed functions (truncated file): drop empty bodies.
    functions = [f for f in functions if f.body]

    return FileFacts(path=path, rel=rel, text=text, code=code,
                     code_lines=code_lines, suppressions=sups,
                     functions=functions, members=members)


# --------------------------------------------------------------------------
# Optional libclang engine
# --------------------------------------------------------------------------


def _clang_extract(path: Path, rel: str, clang_args: Sequence[str],
                   cindex) -> FileFacts:
    """Extract the same facts via the clang AST (libclang bindings)."""
    base = _builtin_extract(path, rel)  # lexing/suppressions are shared
    index = cindex.Index.create()
    tu = index.parse(str(path), args=list(clang_args),
                     options=cindex.TranslationUnit.PARSE_INCOMPLETE)
    functions: List[FunctionFact] = []
    members: List[MemberFact] = []
    K = cindex.CursorKind

    def offset_span(cur):
        ext = cur.extent
        return ext.start.offset, ext.end.offset

    def visit(cur):
        for ch in cur.get_children():
            if ch.location.file is None or \
                    os.path.realpath(str(ch.location.file)) != \
                    os.path.realpath(str(path)):
                continue
            if ch.kind in (K.CXX_METHOD, K.FUNCTION_DECL, K.CONSTRUCTOR,
                           K.DESTRUCTOR, K.FUNCTION_TEMPLATE) and \
                    ch.is_definition():
                a, b = offset_span(ch)
                body = base.code[a:b]
                brace = body.find("{")
                parent = ch.semantic_parent
                cls = parent.spelling if parent is not None and \
                    parent.kind in (K.CLASS_DECL, K.STRUCT_DECL,
                                    K.CLASS_TEMPLATE) else ""
                params = ", ".join(
                    f"{p.type.spelling} {p.spelling}"
                    for p in ch.get_arguments())
                is_const = bool(getattr(ch, "is_const_method",
                                        lambda: False)())
                functions.append(FunctionFact(
                    name=ch.spelling,
                    qualname=(f"{cls}::{ch.spelling}" if cls
                              else ch.spelling),
                    cls=cls, params=params, is_const=is_const,
                    line=ch.location.line,
                    body=base.code[a + brace:b] if brace >= 0 else "",
                    body_line=base.code.count(
                        "\n", 0, a + max(brace, 0)) + 1))
            elif ch.kind == K.FIELD_DECL and "unordered_" in \
                    ch.type.spelling:
                parent = ch.semantic_parent
                members.append(MemberFact(
                    parent.spelling if parent is not None else "",
                    ch.spelling, ch.type.spelling, ch.location.line))
            visit(ch)

    visit(tu.cursor)
    functions = [f for f in functions if f.body]
    if not functions:   # macro-heavy or parse trouble: keep builtin facts
        return base
    base.functions = functions
    base.members = members or base.members
    base.engine = "libclang"
    return base


# --------------------------------------------------------------------------
# Checks
# --------------------------------------------------------------------------

_PLAN_NAME_RE = re.compile(r"^plan[A-Z_]")
_SEND_RE = re.compile(r"\b(?:\w+(?:_|\b)\s*(?:\.|->)\s*)?"
                      r"(send\w*)\s*\(")
_LANE_PARAM_RE = re.compile(
    r"(\bMaintenancePlan\s*&)|(\b\w*(?:Plan|Group|Lane)\w*\s*&\s*\w+)|"
    r"(\blane\b)")
_CONST_PLAN_PARAM_RE = re.compile(r"const\s+MaintenancePlan\s*&")


def _plan_functions(ff: FileFacts) -> List[FunctionFact]:
    plans = []
    for f in ff.functions:
        if _PLAN_NAME_RE.match(f.name):
            plans.append(f)
        elif re.search(r"(?<!const )\bMaintenancePlan\s*&", f.params) and \
                not _CONST_PLAN_PARAM_RE.search(f.params):
            plans.append(f)
    return plans


def _body_line(ff: FileFacts, f: FunctionFact, m_start: int) -> int:
    return f.body_line + f.body.count("\n", 0, m_start)


def check_plan_purity(ff: FileFacts) -> List[Finding]:
    out: List[Finding] = []
    for f in _plan_functions(ff):
        if not f.is_const and f.cls:
            if not _LANE_PARAM_RE.search(f.params):
                out.append(Finding(
                    ff.rel, f.line, "plan-purity",
                    f"plan-phase method '{f.qualname}' is non-const and "
                    f"takes no lane/plan output parameter; plan phases "
                    f"run concurrently and may only write their own lane "
                    f"span"))
        for m in _SEND_RE.finditer(f.body):
            out.append(Finding(
                ff.rel, _body_line(ff, f, m.start()), "plan-purity",
                f"plan-phase function '{f.qualname}' calls "
                f"'{m.group(1)}' — network sends mutate shared wire "
                f"state and must happen in the serial commit phase"))
    # Worker-pool plan callbacks: lambdas named plan*.
    for f in ff.functions:
        for lm in re.finditer(
                r"\b(plan\w*)\s*=\s*\[[^\]]*\]\s*(?:\([^)]*\))?\s*\{",
                f.body):
            open_idx = f.body.find("{", lm.end() - 1)
            close = _match_fwd(f.body, open_idx, "{", "}")
            lam_body = f.body[open_idx:close + 1]
            for m in _SEND_RE.finditer(lam_body):
                out.append(Finding(
                    ff.rel, _body_line(ff, f, open_idx + m.start()),
                    "plan-purity",
                    f"worker-pool plan callback '{lm.group(1)}' calls "
                    f"'{m.group(1)}' — plan callbacks must not send"))
    return out


_NONDET_PATTERNS: List[Tuple[re.Pattern, str]] = [
    (re.compile(r"(?<![\w.>:])std\s*::\s*rand\b|(?<![\w.>:])s?rand\s*\("),
     "C rand()/srand() — use sim::Rng"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device is nondeterministic by design — use sim::Rng "
     "seeded from the experiment seed"),
    (re.compile(r"\bsystem_clock\b"),
     "wall-clock time is not part of the simulation; use sim::SimTime "
     "(steady_clock is allowed for host-perf counters only)"),
    (re.compile(r"(?<![\w.>:])(?:std\s*::\s*)?time\s*\(\s*(?:nullptr|NULL"
                r"|0|&\w+)?\s*\)"),
     "time() reads the wall clock — use sim::SimTime"),
    (re.compile(r"\b(mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
                r"ranlux\d+(?:_base)?|knuth_b)\s+\w+\s*;"),
     "default-seeded <random> engine — its seed is unspecified state; "
     "use sim::Rng (or at minimum seed it from the experiment seed)"),
]


def check_nondet_source(ff: FileFacts) -> List[Finding]:
    out: List[Finding] = []
    for pat, why in _NONDET_PATTERNS:
        for m in pat.finditer(ff.code):
            line = ff.line_of(m.start())
            snippet = m.group(0).strip()
            out.append(Finding(
                ff.rel, line, "nondet-source",
                f"'{snippet}': {why}"))
    return out


def _unordered_names(ff: FileFacts) -> Dict[str, int]:
    """Identifiers declared with an unordered container type in this file
    (members, locals, params) -> declaration line."""
    names: Dict[str, int] = {}
    for mem in ff.members:
        names[mem.name] = mem.line
    decl_re = re.compile(
        r"(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<")
    for m in decl_re.finditer(ff.code):
        close = _match_fwd(ff.code, ff.code.find("<", m.start()), "<", ">")
        if close == -1:
            continue
        vm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;={,)]",
                      ff.code[close + 1:])
        if vm:
            names.setdefault(vm.group(1),
                             ff.line_of(m.start()))
    return names


def check_unordered(ff: FileFacts,
                    global_members: Optional[Set[str]] = None
                    ) -> List[Finding]:
    out: List[Finding] = []
    names = _unordered_names(ff)
    # Members declared in headers are iterated from .cpp files: the name
    # set must span the whole scan, not just this file.
    for nm in global_members or ():
        names.setdefault(nm, 0)
    # Member declarations are long-lived state.
    for mem in ff.members:
        out.append(Finding(
            ff.rel, mem.line, "unordered-state",
            f"'{mem.cls or '<file>'}::{mem.name}' holds "
            f"{mem.type_text.split('<')[0].strip()} state; justify that "
            f"its iteration order never reaches committed state, "
            f"snapshot bytes, or stats"))
    if not names:
        return out
    alt = "|".join(re.escape(nm) for nm in sorted(names))
    # Range-for whose range expression ends in an unordered identifier.
    for m in re.finditer(
            r"\bfor\s*\([^;()]*?:\s*[\w.\->\[\]() ]*?\b(" + alt +
            r")\s*\)\s*", ff.code):
        out.append(Finding(
            ff.rel, ff.line_of(m.start()), "unordered-iter",
            f"range-for over unordered container '{m.group(1)}'"))
    # Explicit iterator walks / whole-container copies start at begin()
    # (bare end() in `find(k) != end()` point queries is fine).
    for m in re.finditer(
            r"\b(" + alt + r")\s*\.\s*(c?begin|rbegin)\s*\(",
            ff.code):
        out.append(Finding(
            ff.rel, ff.line_of(m.start()), "unordered-iter",
            f"'{m.group(1)}.{m.group(2)}()' exposes unordered iteration "
            f"order"))
    return out


_RNG_CTOR_RE = re.compile(
    r"\b(?:sim\s*::\s*)?Rng\s+(\w+)\s*(\(|\{|=)")
_RNG_FORK_RE = re.compile(r"\.\s*fork\s*\(")
_RNG_MEMBER_DRAW_RE = re.compile(
    r"\b(\w*rng_?)\s*(?:\.|->)\s*"
    r"(next|uniform|below|between|chance|index|exponential|shuffle|"
    r"operator\(\))\s*[(<]")


def check_rng_stream(ff: FileFacts) -> List[Finding]:
    out: List[Finding] = []
    for f in _plan_functions(ff):
        for m in _RNG_CTOR_RE.finditer(f.body):
            tail = f.body[m.end() - 1:m.end() + 120]
            if "Rng::stream" in tail or "stream(" in tail.split(";")[0]:
                continue
            out.append(Finding(
                ff.rel, _body_line(ff, f, m.start()), "rng-stream",
                f"plan-phase function '{f.qualname}' constructs Rng "
                f"'{m.group(1)}' outside Rng::stream(seed, salt, seq); "
                f"sequential generators are draw-order-dependent"))
        for m in _RNG_FORK_RE.finditer(f.body):
            out.append(Finding(
                ff.rel, _body_line(ff, f, m.start()), "rng-stream",
                f"plan-phase function '{f.qualname}' calls fork() — "
                f"fork order is shared sequential state; derive a "
                f"counter stream instead"))
        for m in _RNG_MEMBER_DRAW_RE.finditer(f.body):
            if m.group(1) in ("rng", "rng_") and \
                    f"Rng {m.group(1)}" in f.body or \
                    re.search(r"\bRng\s+" + re.escape(m.group(1)) + r"\b",
                              f.body):
                continue  # draw from a local stream-derived generator
            out.append(Finding(
                ff.rel, _body_line(ff, f, m.start()), "rng-stream",
                f"plan-phase function '{f.qualname}' draws "
                f"'{m.group(1)}.{m.group(2)}()' from a member "
                f"generator — sequential draws depend on plan "
                f"execution order; use Rng::stream"))
    return out


_LEDGER_CALL_RE = re.compile(
    r"\b(\w+)\s*(?:\.|->)\s*(u8|u32|u64|i64|f64|raw)\b"
    r"\s*(?:<\s*([^<>()]*(?:<[^<>]*>)?[^<>()]*?)\s*>)?\s*\(")
_NESTED_PAIR_RE = re.compile(r"\b(write|read)([A-Z]\w*)\s*\(")


def _ledger(f: FunctionFact, side: str) -> List[str]:
    """Ordered primitive ledger of a write*/read* helper body."""
    events: List[Tuple[int, str]] = []
    for m in _LEDGER_CALL_RE.finditer(f.body):
        kind = m.group(2)
        targ = re.sub(r"\s+", "", m.group(3) or "")
        targ = targ.split("::")[-1] if targ else ""
        events.append((m.start(), f"{kind}<{targ}>" if targ else kind))
    for m in _NESTED_PAIR_RE.finditer(f.body):
        if m.group(1) == side:
            events.append((m.start(), f"call:{m.group(2)}"))
    events.sort()
    return [e for _, e in events]


def _is_ckpt_helper(f: FunctionFact, side: str) -> bool:
    if side == "write":
        # Ledger writers mutate a SectionWriter; framing helpers that
        # take the finished payload by const-ref are not ledgers.
        return bool(re.match(r"^write[A-Z]", f.name)) and \
            bool(re.search(r"(?<!const )\bSectionWriter\s*&", f.params))
    return bool(re.match(r"^read[A-Z]", f.name)) and \
        ("Cursor" in f.params or "Cursor" in f.body[:200])


def check_ckpt_pairing(all_facts: List[FileFacts]) -> List[Finding]:
    out: List[Finding] = []
    writers: Dict[str, Tuple[FileFacts, FunctionFact]] = {}
    readers: Dict[str, Tuple[FileFacts, FunctionFact]] = {}
    for ff in all_facts:
        for f in ff.functions:
            if _is_ckpt_helper(f, "write"):
                writers[f.name[len("write"):]] = (ff, f)
            elif _is_ckpt_helper(f, "read"):
                readers[f.name[len("read"):]] = (ff, f)
    for key, (wff, wf) in sorted(writers.items()):
        if key not in readers:
            out.append(Finding(
                wff.rel, wf.line, "ckpt-pairing",
                f"serialization helper 'write{key}' has no matching "
                f"'read{key}' — every write ledger needs a paired read "
                f"ledger"))
            continue
        rff, rf = readers[key]
        wl, rl = _ledger(wf, "write"), _ledger(rf, "read")
        if wl != rl:
            diff_at = next((i for i, (a, b) in
                            enumerate(zip(wl, rl)) if a != b),
                           min(len(wl), len(rl)))
            out.append(Finding(
                rff.rel, rf.line, "ckpt-pairing",
                f"'write{key}'/'read{key}' ledgers disagree at step "
                f"{diff_at}: write={wl} vs read={rl} — a field is "
                f"serialized on one path only (or out of order)"))
    for key, (rff, rf) in sorted(readers.items()):
        if key not in writers:
            out.append(Finding(
                rff.rel, rf.line, "ckpt-pairing",
                f"serialization helper 'read{key}' has no matching "
                f"'write{key}'"))
    # SavedState field coverage: every field must be referenced on both
    # the save path and the restore path somewhere in the tree.
    save_corpus: List[str] = []
    restore_corpus: List[str] = []
    for ff in all_facts:
        for f in ff.functions:
            if re.match(r"^(save|write)([A-Z]|$)", f.name):
                save_corpus.append(f.body)
            if re.match(r"^(restore|read)([A-Z]|$)", f.name):
                restore_corpus.append(f.body)
    save_text = "\n".join(save_corpus)
    restore_text = "\n".join(restore_corpus)
    for ff in all_facts:
        for cls, fields, line_by_field in _saved_state_structs(ff):
            owner = cls.rsplit("::", 1)[0] if "::" in cls else cls
            n_fields = len(fields)
            agg_save = _aggregate_covers(save_text, n_fields)
            agg_restore = _aggregate_covers(restore_text, n_fields)
            for fld in fields:
                word = re.compile(r"\b" + re.escape(fld) + r"\b")
                ok_save = agg_save or bool(word.search(save_text))
                ok_restore = agg_restore or bool(
                    word.search(restore_text))
                if ok_save and ok_restore:
                    continue
                missing = []
                if not ok_save:
                    missing.append("save")
                if not ok_restore:
                    missing.append("restore")
                out.append(Finding(
                    ff.rel, line_by_field[fld], "ckpt-pairing",
                    f"'{owner}::SavedState::{fld}' is not referenced on "
                    f"the {' or '.join(missing)} path — a checkpoint "
                    f"would silently drop it (update the section "
                    f"writer/reader pair)"))
    return out


def _aggregate_covers(corpus: str, n_fields: int) -> bool:
    """True if the corpus aggregate-initializes a SavedState with exactly
    n_fields positional arguments (covers all fields without naming)."""
    for m in re.finditer(r"\bSavedState\s*\{", corpus):
        open_idx = corpus.find("{", m.start())
        close = _match_fwd(corpus, open_idx, "{", "}")
        if close == -1:
            continue
        inner = corpus[open_idx + 1:close].strip()
        if not inner:
            continue
        depth = 0
        args = 1
        for ch in inner:
            if ch in "({[<":
                depth += 1
            elif ch in ")}]>":
                depth -= 1
            elif ch == "," and depth == 0:
                args += 1
        if args == n_fields:
            return True
    return False


def _saved_state_structs(
        ff: FileFacts) -> List[Tuple[str, List[str], Dict[str, int]]]:
    """(qualified SavedState name, field names, field -> line)."""
    results = []
    for m in re.finditer(r"\bstruct\s+SavedState\s*\{", ff.code):
        open_idx = ff.code.find("{", m.start())
        close = _match_fwd(ff.code, open_idx, "{", "}")
        if close == -1:
            continue
        body = ff.code[open_idx + 1:close]
        fields: List[str] = []
        lines: Dict[str, int] = {}
        # Field declarations: "<type soup> name ( = init | {init} )? ;"
        for dm in re.finditer(
                r"^[^;{}()]*?([A-Za-z_]\w*)\s*(?:=\s*[^;]*|\{[^;{}]*\})?;",
                body, re.M):
            decl = dm.group(0)
            if re.search(r"\b(using|typedef|static|friend)\b", decl):
                continue
            name = dm.group(1)
            fields.append(name)
            lines[name] = ff.code.count("\n", 0,
                                        open_idx + 1 + dm.start(1)) + 1
        if not fields:
            continue
        # Owning class: innermost class/struct whose brace span encloses
        # this SavedState declaration.
        owner = ""
        for cm in re.finditer(r"\b(?:class|struct)\s+([A-Za-z_]\w*)[^;{=()]*\{",
                              ff.code[:m.start()]):
            brace = ff.code.find("{", cm.start())
            end = _match_fwd(ff.code, brace, "{", "}")
            if end != -1 and end > m.start():
                owner = cm.group(1)
        results.append((f"{owner}::SavedState" if owner else "SavedState",
                        fields, lines))
    return results


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def discover_files(repo_root: Path, paths: Sequence[str],
                   compile_commands: Optional[Path]) -> List[Path]:
    roots = [repo_root / p for p in paths]
    files: Set[Path] = set()
    if compile_commands and compile_commands.exists():
        try:
            for entry in json.loads(compile_commands.read_text()):
                f = Path(entry["directory"], entry["file"]).resolve()
                if any(str(f).startswith(str(r.resolve()) + os.sep)
                       for r in roots):
                    files.add(f)
        except (ValueError, KeyError) as e:
            print(f"detlint: warning: unreadable compile_commands "
                  f"({e}); falling back to a glob", file=sys.stderr)
    # Headers never appear in compile_commands; sources might be missing
    # if the database is stale. Union with a glob so coverage is total.
    for root in roots:
        if root.is_file():
            files.add(root.resolve())
            continue
        for ext in SOURCE_EXTS:
            files.update(p.resolve() for p in root.rglob(f"*{ext}"))
    return sorted(files)


def _clang_args_for(compile_commands: Optional[Path]) -> List[str]:
    if compile_commands and compile_commands.exists():
        try:
            for entry in json.loads(compile_commands.read_text()):
                args = entry.get("command", "").split()[1:]
                keep = [a for a in args if a.startswith(("-I", "-D",
                                                         "-std="))]
                if keep:
                    return keep
        except ValueError:
            pass
    return ["-std=c++20"]


def analyze(repo_root: Path, files: Sequence[Path], engine: str,
            compile_commands: Optional[Path]) -> Tuple[List[FileFacts],
                                                       str]:
    cindex = None
    chosen = "builtin"
    if engine in ("auto", "libclang"):
        try:
            from clang import cindex as _ci  # type: ignore
            _ci.Index.create()
            cindex = _ci
            chosen = "libclang"
        except Exception as e:  # noqa: BLE001 — any failure gates the dep
            if engine == "libclang":
                print(f"detlint: error: --engine libclang requested but "
                      f"unavailable: {e}", file=sys.stderr)
                sys.exit(2)
            chosen = "builtin"
    clang_args = _clang_args_for(compile_commands) if cindex else []
    facts: List[FileFacts] = []
    for path in files:
        rel = os.path.relpath(path, repo_root)
        if cindex is not None:
            try:
                facts.append(_clang_extract(path, rel, clang_args, cindex))
                continue
            except Exception as e:  # noqa: BLE001
                print(f"detlint: warning: libclang failed on {rel} "
                      f"({e}); using builtin facts", file=sys.stderr)
        facts.append(_builtin_extract(path, rel))
    return facts, chosen


def run_checks(facts: List[FileFacts],
               only: Optional[Set[str]] = None) -> List[Finding]:
    findings: List[Finding] = []
    global_members = {mem.name for ff in facts for mem in ff.members}
    for ff in facts:
        findings += check_plan_purity(ff)
        findings += check_nondet_source(ff)
        findings += check_unordered(ff, global_members)
        findings += check_rng_stream(ff)
    findings += check_ckpt_pairing(facts)
    if only:
        findings = [f for f in findings if f.check in only]

    # Apply suppressions.
    sup_index: Dict[Tuple[str, int], List[Suppression]] = {}
    for ff in facts:
        for s in ff.suppressions:
            for ln in s.covers:
                sup_index.setdefault((ff.rel, ln), []).append(s)
    for f in findings:
        for s in sup_index.get((f.path, f.line), []):
            if f.check in s.checks or "all" in s.checks:
                if not s.justification:
                    f.message += (" [allow() without justification — "
                                  "not suppressed]")
                    s.used = True
                    break
                f.suppressed = True
                f.justification = s.justification
                s.used = True
                break
    # Unused suppressions are findings themselves.
    for ff in facts:
        for s in ff.suppressions:
            if not s.used:
                findings.append(Finding(
                    ff.rel, s.line, "unused-allow",
                    f"allow({', '.join(s.checks)}) suppresses nothing "
                    f"on lines {list(s.covers)}"))
    findings.sort(key=lambda f: (f.path, f.line, f.check))
    return findings


def summary_md(findings: List[Finding], engine: str,
               n_files: int) -> str:
    active = [f for f in findings if not f.suppressed]
    sup = [f for f in findings if f.suppressed]
    lines = [
        "## detlint findings",
        "",
        f"Engine: `{engine}` · files scanned: {n_files} · "
        f"unsuppressed: **{len(active)}** · suppressed: {len(sup)}",
        "",
    ]
    if active:
        lines += ["| location | check | finding |",
                  "| --- | --- | --- |"]
        for f in active:
            msg = f.message.replace("|", "\\|")
            lines.append(f"| `{f.path}:{f.line}` | `{f.check}` | {msg} |")
    else:
        lines.append("No unsuppressed findings.")
    if sup:
        lines += ["", "<details><summary>Suppressed findings "
                  f"({len(sup)})</summary>", "",
                  "| location | check | justification |",
                  "| --- | --- | --- |"]
        for f in sup:
            j = f.justification.replace("|", "\\|")
            lines.append(f"| `{f.path}:{f.line}` | `{f.check}` | {j} |")
        lines += ["", "</details>"]
    return "\n".join(lines) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="detlint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--repo-root", type=Path,
                    default=Path(__file__).resolve().parents[2])
    ap.add_argument("--compile-commands", type=Path, default=None,
                    help="CMake-exported compile_commands.json (used for "
                         "the TU list and clang args; headers are always "
                         "globbed)")
    ap.add_argument("--paths", nargs="*", default=list(DEFAULT_PATHS),
                    help="paths (relative to repo root) to scan")
    ap.add_argument("--engine", choices=("auto", "libclang", "builtin"),
                    default="auto")
    ap.add_argument("--check", action="append", default=None,
                    help="restrict to the named check (repeatable)")
    ap.add_argument("--format", choices=("text", "json"), default="text")
    ap.add_argument("--json-out", type=Path, default=None,
                    help="also write machine-readable findings here")
    ap.add_argument("--summary-md", type=Path, default=None,
                    help="write a GitHub job-summary markdown table here")
    ap.add_argument("--list-checks", action="store_true")
    args = ap.parse_args(argv)

    if args.list_checks:
        for name, desc in CHECKS.items():
            print(f"{name}: {desc}")
        return 0

    if args.check:
        unknown = set(args.check) - set(CHECKS)
        if unknown:
            print(f"detlint: unknown check(s): {sorted(unknown)}",
                  file=sys.stderr)
            return 2

    repo_root = args.repo_root.resolve()
    cc = args.compile_commands
    if cc is None:
        candidate = repo_root / "build" / "compile_commands.json"
        cc = candidate if candidate.exists() else None

    files = discover_files(repo_root, args.paths, cc)
    if not files:
        print("detlint: no source files found", file=sys.stderr)
        return 2

    facts, engine = analyze(repo_root, files, args.engine, cc)
    findings = run_checks(facts,
                          set(args.check) if args.check else None)
    active = [f for f in findings if not f.suppressed]

    payload = {
        "engine": engine,
        "files": len(files),
        "unsuppressed": len(active),
        "suppressed": len(findings) - len(active),
        "findings": [f.as_json() for f in findings],
    }
    if args.format == "json":
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        for f in findings:
            print(f.text())
        print(f"detlint: engine={engine} files={len(files)} "
              f"unsuppressed={len(active)} "
              f"suppressed={len(findings) - len(active)}")
    if args.json_out:
        args.json_out.write_text(json.dumps(payload, indent=2) + "\n")
    if args.summary_md:
        args.summary_md.write_text(
            summary_md(findings, engine, len(files)))
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main())
