#!/usr/bin/env python3
"""Selftest for detlint's check contract, run as a ctest entry
(detlint_selftest), mirroring tools/check_thread_invariance_test.py.

The properties pinned down here are the ones CI leans on:

  * every seeded violation in the bad_* fixtures is detected, at least
    one per check family;
  * the ckpt-pairing family demonstrably catches a field added to
    saveState but not restoreState (the acceptance-criteria case);
  * the clean fixture — which exercises every *legitimate* idiom the
    lint inspects (const plan methods, lane writers, Rng::stream draws,
    steady_clock timing, point queries, symmetric ledgers) — produces
    zero findings, so the lint cannot rot into a false-positive firehose;
  * the suppressed fixture reports findings but zero unsuppressed ones,
    both same-line and preceding-line allow() placements work, and an
    allow() WITHOUT a justification does not suppress;
  * an unused allow() is itself a finding (stale suppressions are loud);
  * the CLI contract: exit 1 on findings, exit 0 on clean, --format json
    is machine-readable.

The selftest always runs the builtin engine so its verdicts do not
depend on whether libclang is installed on the host.
"""
import json
import subprocess
import sys
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "selftest" / "fixtures"

sys.path.insert(0, str(HERE))

import detlint  # noqa: E402


def lint(*names):
    files = sorted(FIXTURES / n for n in names)
    facts, _ = detlint.analyze(FIXTURES, files, "builtin", None)
    return detlint.run_checks(facts)


def active(findings):
    return [f for f in findings if not f.suppressed]


def by_check(findings, check):
    return [f for f in findings if f.check == check]


class PlanPurityTest(unittest.TestCase):
    def setUp(self):
        self.findings = lint("bad_plan_purity.cpp")

    def test_nonconst_plan_method_without_lane_param(self):
        hits = by_check(active(self.findings), "plan-purity")
        self.assertTrue(any("planDrift" in f.message for f in hits),
                        [f.text() for f in self.findings])

    def test_send_from_plan_body(self):
        hits = by_check(active(self.findings), "plan-purity")
        self.assertTrue(any("planProbe" in f.message and "send" in f.message
                            for f in hits))

    def test_send_from_worker_pool_plan_callback(self):
        hits = by_check(active(self.findings), "plan-purity")
        self.assertTrue(any("planOne" in f.message for f in hits))

    def test_lane_writer_and_const_reader_pass(self):
        hits = by_check(active(self.findings), "plan-purity")
        self.assertFalse(any("planExchange" in f.message for f in hits))
        self.assertFalse(any("planLook" in f.message for f in hits))


class NondetSourceTest(unittest.TestCase):
    def setUp(self):
        self.findings = lint("bad_nondet.cpp")

    def test_every_banned_source_is_flagged(self):
        msgs = " ".join(f.message for f in
                        by_check(active(self.findings), "nondet-source"))
        for needle in ("rand", "random_device", "system_clock", "time()",
                       "mt19937_64"):
            self.assertIn(needle, msgs, msgs)

    def test_unordered_iteration_flagged(self):
        hits = by_check(active(self.findings), "unordered-iter")
        self.assertGreaterEqual(len(hits), 2)  # range-for and begin()

    def test_unordered_member_needs_justification(self):
        hits = by_check(active(self.findings), "unordered-state")
        self.assertTrue(any("latencies" in f.message for f in hits))

    def test_allow_without_justification_does_not_suppress(self):
        # The fixture's range-for carries "detlint: allow(unordered-iter)"
        # with no justification text — it must stay unsuppressed.
        hits = by_check(active(self.findings), "unordered-iter")
        self.assertTrue(any("range-for" in f.message for f in hits))


class RngStreamTest(unittest.TestCase):
    def setUp(self):
        self.findings = lint("bad_rng_stream.cpp")

    def test_raw_construction_in_plan_path(self):
        hits = by_check(active(self.findings), "rng-stream")
        self.assertTrue(any("planPickRaw" in f.message for f in hits),
                        [f.text() for f in self.findings])

    def test_fork_in_plan_path(self):
        hits = by_check(active(self.findings), "rng-stream")
        self.assertTrue(any("planPickFork" in f.message for f in hits))

    def test_member_draw_in_plan_path(self):
        hits = by_check(active(self.findings), "rng-stream")
        self.assertTrue(any("planPickMember" in f.message for f in hits))

    def test_stream_draws_and_commit_draws_pass(self):
        hits = by_check(active(self.findings), "rng-stream")
        self.assertFalse(any("planPickStream" in f.message for f in hits))
        self.assertFalse(any("commitPick" in f.message for f in hits))


class CkptPairingTest(unittest.TestCase):
    def setUp(self):
        self.findings = lint("bad_ckpt_pairing.cpp")

    def test_ledger_mismatch_detected(self):
        hits = by_check(active(self.findings), "ckpt-pairing")
        self.assertTrue(any("Blob" in f.message and "disagree" in f.message
                            for f in hits),
                        [f.text() for f in self.findings])

    def test_orphan_writer_detected(self):
        hits = by_check(active(self.findings), "ckpt-pairing")
        self.assertTrue(any("writeOrphan" in f.message for f in hits))

    def test_saved_field_missing_on_restore_path(self):
        # Acceptance criterion: a field added to saveState but not
        # restoreState fails the lint.
        hits = by_check(active(self.findings), "ckpt-pairing")
        self.assertTrue(any("spikes" in f.message and "restore" in f.message
                            for f in hits))

    def test_symmetric_pair_passes(self):
        hits = by_check(active(self.findings), "ckpt-pairing")
        self.assertFalse(any("Good" in f.message for f in hits))
        self.assertFalse(any("'Meter::SavedState::ticks'" in f.message
                             for f in hits))


class CleanFixtureTest(unittest.TestCase):
    def test_clean_tu_has_zero_findings(self):
        findings = lint("clean.cpp")
        self.assertEqual([f.text() for f in findings], [])


class SuppressionTest(unittest.TestCase):
    def setUp(self):
        self.findings = lint("suppressed.cpp")

    def test_zero_unsuppressed_findings(self):
        self.assertEqual([f.text() for f in active(self.findings)], [])

    def test_violations_still_reported_as_suppressed(self):
        sup = [f for f in self.findings if f.suppressed]
        self.assertGreaterEqual(len(sup), 3)
        for f in sup:
            self.assertTrue(f.justification, f.text())

    def test_both_placements_work(self):
        checks = {f.check for f in self.findings if f.suppressed}
        self.assertIn("unordered-state", checks)  # same-line
        self.assertIn("unordered-iter", checks)   # preceding-line

    def test_unused_allow_is_a_finding(self):
        src = FIXTURES / "suppressed.cpp"
        text = src.read_text()
        stale = text + ("\n// detlint: allow(nondet-source) stale\n"
                        "inline int nothingHere() { return 0; }\n")
        tmp = FIXTURES.parent / "tmp_unused_allow.cpp"
        tmp.write_text(stale)
        try:
            facts, _ = detlint.analyze(FIXTURES.parent, [tmp], "builtin",
                                       None)
            findings = detlint.run_checks(facts)
            self.assertTrue(any(f.check == "unused-allow"
                                for f in active(findings)),
                            [f.text() for f in findings])
        finally:
            tmp.unlink()


class CliContractTest(unittest.TestCase):
    def run_cli(self, *extra):
        return subprocess.run(
            [sys.executable, str(HERE / "detlint.py"),
             "--engine", "builtin", "--repo-root", str(FIXTURES),
             *extra],
            capture_output=True, text=True)

    def test_exit_one_on_findings_and_json_shape(self):
        r = self.run_cli("--paths", "bad_nondet.cpp", "--format", "json")
        self.assertEqual(r.returncode, 1, r.stderr)
        payload = json.loads(r.stdout)
        self.assertGreater(payload["unsuppressed"], 0)
        self.assertTrue(all({"path", "line", "check", "message"}
                            <= set(f) for f in payload["findings"]))

    def test_exit_zero_on_clean(self):
        r = self.run_cli("--paths", "clean.cpp")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_exit_zero_on_fully_suppressed(self):
        r = self.run_cli("--paths", "suppressed.cpp")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_summary_md_written(self):
        out = FIXTURES.parent / "tmp_summary.md"
        try:
            r = self.run_cli("--paths", "bad_ckpt_pairing.cpp",
                             "--summary-md", str(out))
            self.assertEqual(r.returncode, 1)
            text = out.read_text()
            self.assertIn("ckpt-pairing", text)
            self.assertIn("| location |", text)
        finally:
            if out.exists():
                out.unlink()

    def test_unknown_check_is_usage_error(self):
        r = self.run_cli("--check", "no-such-check")
        self.assertEqual(r.returncode, 2)


if __name__ == "__main__":
    unittest.main()
