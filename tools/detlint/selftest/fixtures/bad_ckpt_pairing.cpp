// detlint selftest fixture: every violation here is deliberate.
// Seeded violations: ckpt-pairing (write/read ledger mismatch, a write
// helper with no read twin, and a SavedState field serialized on the
// save path but never restored — the "field added to saveState but not
// restoreState" acceptance case). This TU is never compiled by the
// main build.

#include <cstdint>
#include <vector>

struct SectionWriter {
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  template <typename T>
  void raw(const T& v);
};

struct Cursor {
  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  template <typename T>
  T raw();
};

struct Blob {
  std::uint64_t a = 0;
  std::uint32_t b = 0;
  double c = 0.0;
};

// VIOLATION: ledgers disagree — the writer emits u64,u32,f64 but the
// reader consumes only u64,u32 (the f64 was added to one side only).
inline void writeBlob(SectionWriter& sec, const Blob& blob) {
  sec.u64(blob.a);
  sec.u32(blob.b);
  sec.f64(blob.c);
}

inline Blob readBlob(Cursor& cur) {
  Blob blob;
  blob.a = cur.u64();
  blob.b = cur.u32();
  return blob;
}

// VIOLATION: orphan writer — no readOrphan exists anywhere.
inline void writeOrphan(SectionWriter& sec, std::uint64_t v) {
  sec.u64(v);
}

// OK: symmetric pair, including a nested paired call.
inline void writeGood(SectionWriter& sec, const Blob& blob) {
  sec.u8(1);
  writeBlob(sec, blob);
}

inline Blob readGood(Cursor& cur) {
  (void)cur.u8();
  return readBlob(cur);
}

class Meter {
 public:
  struct SavedState {
    std::uint64_t ticks = 0;
    std::uint64_t drops = 0;
    // VIOLATION: added to saveState below but never restored.
    std::uint64_t spikes = 0;
  };

  SavedState saveState() const {
    SavedState s;
    s.ticks = ticks_;
    s.drops = drops_;
    s.spikes = spikes_;
    return s;
  }

  void restoreState(const SavedState& s) {
    ticks_ = s.ticks;
    drops_ = s.drops;
    // spikes_ forgotten — the lint must notice.
  }

 private:
  std::uint64_t ticks_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t spikes_ = 0;
};
