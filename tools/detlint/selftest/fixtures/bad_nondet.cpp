// detlint selftest fixture: every violation here is deliberate.
// Seeded violations: nondet-source (rand, random_device, system_clock,
// time(), default-seeded engine), unordered-iter (range-for + begin()),
// and one allow() WITHOUT a justification which must NOT suppress.
// This TU is never compiled by the main build.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>

struct Stats {
  std::unordered_map<int, double> latencies;  // VIOLATION: unordered-state
};

inline double sampleEverything(Stats& s) {
  double acc = 0.0;

  // VIOLATION: C rand().
  acc += std::rand();

  // VIOLATION: random_device is nondeterministic by design.
  std::random_device rd;
  acc += rd();

  // VIOLATION: default-seeded engine (unspecified seed state).
  std::mt19937_64 gen;
  acc += static_cast<double>(gen());

  // VIOLATION: wall clock via system_clock.
  acc += static_cast<double>(
      std::chrono::system_clock::now().time_since_epoch().count());

  // VIOLATION: wall clock via time().
  acc += static_cast<double>(time(nullptr));

  // VIOLATION (not suppressed): allow() without a justification.
  for (const auto& kv : s.latencies) {  // detlint: allow(unordered-iter)
    acc += kv.second;
  }

  // VIOLATION: begin() exposes unordered iteration order.
  acc += s.latencies.begin()->second;

  return acc;
}
