// detlint selftest fixture: every violation here is deliberate.
// Seeded violations: plan-purity (non-const plan method without a lane
// parameter; network send from a plan body; send from a worker-pool
// plan callback). This TU is never compiled by the main build.

struct MaintenancePlan {
  int adds = 0;
};

struct Network {
  void send(int dst, int payload);
  void sendWithAck(int dst, int payload);
  bool isOnline(int node) const;
};

struct WorkerPool {
  template <typename F>
  void run(F&& f);
};

class Engine {
 public:
  // VIOLATION: non-const plan method, no lane/plan output parameter.
  void planDrift(int round) {
    drift_ += round;
  }

  // VIOLATION: plan phase calls Network::send.
  void planProbe(int node, MaintenancePlan& plan) const {
    if (network_.isOnline(node)) {
      network_.send(node, 42);
    }
    (void)plan;
  }

  // OK: const plan method that only reads shared state.
  void planLook(int node, MaintenancePlan& plan) const {
    if (network_.isOnline(node)) {
      plan.adds += 1;
    }
  }

  // OK: non-const, but writes only its own lane.
  void planExchange(int initiator, unsigned long lane) {
    lanes_[lane] = initiator;
  }

  void dispatch(WorkerPool& pool) {
    // VIOLATION: worker-pool plan callback sends on the network.
    auto planOne = [this](int i) {
      network_.sendWithAck(i, 7);
    };
    pool.run(planOne);
  }

 private:
  mutable Network network_;
  int drift_ = 0;
  int lanes_[8] = {};
};
