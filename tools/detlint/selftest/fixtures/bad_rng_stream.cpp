// detlint selftest fixture: every violation here is deliberate.
// Seeded violations: rng-stream (raw Rng construction in a plan body,
// fork() in a plan body, sequential draws from a member generator).
// This TU is never compiled by the main build.

#include <cstdint>

namespace sim {
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) : s_(seed) {}
  static Rng stream(std::uint64_t seed, std::uint64_t salt,
                    std::uint64_t seq);
  Rng fork(std::uint64_t label, std::uint64_t idx);
  std::uint64_t next();
  double uniform();
  std::uint64_t below(std::uint64_t bound);

 private:
  std::uint64_t s_;
};
}  // namespace sim

struct MaintenancePlan {
  std::uint64_t draws = 0;
};

class Chooser {
 public:
  // VIOLATION: raw Rng construction inside a plan path.
  void planPickRaw(int node, MaintenancePlan& plan) const {
    sim::Rng rng(static_cast<std::uint64_t>(node));
    plan.draws += rng.next();
  }

  // VIOLATION: fork() inside a plan path.
  void planPickFork(int node, MaintenancePlan& plan) const {
    plan.draws += seedRng_.fork(1, static_cast<std::uint64_t>(node)).next();
  }

  // VIOLATION: sequential draw from a member generator in a plan path.
  void planPickMember(int node, MaintenancePlan& plan) const {
    plan.draws += rng_.below(static_cast<std::uint64_t>(node) + 1);
  }

  // OK: counter-based stream, drawn locally.
  void planPickStream(int node, MaintenancePlan& plan) const {
    sim::Rng rng = sim::Rng::stream(seed_, static_cast<std::uint64_t>(node),
                                    round_);
    plan.draws += rng.next();
  }

  // OK: commit phase may use the member generator sequentially.
  void commitPick(int node) {
    last_ = rng_.below(static_cast<std::uint64_t>(node) + 1);
  }

 private:
  mutable sim::Rng rng_{1};
  mutable sim::Rng seedRng_{2};
  std::uint64_t seed_ = 3;
  std::uint64_t round_ = 0;
  std::uint64_t last_ = 0;
};
