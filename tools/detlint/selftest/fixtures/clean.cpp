// detlint selftest fixture: a TU that exercises every pattern detlint
// inspects and must produce ZERO findings. Legitimate idioms the lint
// must not flag: const plan methods, lane-writer plan methods,
// Rng::stream draws, steady_clock host timing, point queries into an
// unordered map held as a local, symmetric write/read ledgers, and a
// fully-paired SavedState. This TU is never compiled by the main build.

#include <chrono>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace sim {
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) : s_(seed) {}
  static Rng stream(std::uint64_t seed, std::uint64_t salt,
                    std::uint64_t seq);
  std::uint64_t next();
  std::uint64_t below(std::uint64_t bound);

 private:
  std::uint64_t s_;
};
}  // namespace sim

struct MaintenancePlan {
  std::uint64_t draws = 0;
};

struct SectionWriter {
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  template <typename T>
  void raw(const T& v);
};

struct Cursor {
  std::uint32_t u32();
  std::uint64_t u64();
  template <typename T>
  T raw();
};

struct Network {
  bool isOnline(int node) const;
  void send(int dst, int payload);
};

class Engine {
 public:
  // Const plan method drawing from a counter stream: the blessed shape.
  void planDiscovery(int node, MaintenancePlan& plan) const {
    if (!network_.isOnline(node)) {
      return;
    }
    sim::Rng rng = sim::Rng::stream(seed_, static_cast<std::uint64_t>(node),
                                    round_);
    plan.draws += rng.below(16);
  }

  // Non-const plan method that writes only its own lane buffer.
  void planExchange(int initiator, unsigned long lane) {
    lanes_[lane] = initiator;
  }

  // Commit phase: sequential member draws and network sends are fine.
  void commitDiscovery(int node, const MaintenancePlan& plan) {
    applied_ += plan.draws + rng_.next();
    network_.send(node, 1);
  }

  // Host-perf timing with steady_clock is allowed (never simulation
  // state).
  double wallSeconds() const {
    auto t0 = std::chrono::steady_clock::now();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  }

  // Point queries into a local unordered map: no iteration, no finding.
  static double lookupOnly(std::uint64_t key) {
    std::unordered_map<std::uint64_t, double> cache;
    cache.emplace(key, 1.0);
    auto it = cache.find(key);
    return it == cache.end() ? 0.0 : it->second;
  }

 private:
  Network network_;
  sim::Rng rng_{1};
  std::uint64_t seed_ = 3;
  std::uint64_t round_ = 0;
  std::uint64_t applied_ = 0;
  int lanes_[8] = {};
};

struct Wheel {
  std::uint64_t slots = 0;
  std::uint32_t cursor = 0;
};

// Symmetric write/read pair: identical ledgers including raw<T>.
inline void writeWheel(SectionWriter& sec, const Wheel& wheel) {
  sec.u64(wheel.slots);
  sec.u32(wheel.cursor);
  sec.raw<std::uint64_t>(wheel.slots);
}

inline Wheel readWheel(Cursor& cur) {
  Wheel wheel;
  wheel.slots = cur.u64();
  wheel.cursor = cur.u32();
  (void)cur.raw<std::uint64_t>();
  return wheel;
}

class Counter {
 public:
  struct SavedState {
    std::uint64_t ticks = 0;
    std::uint64_t drops = 0;
  };

  SavedState saveState() const { return SavedState{ticks_, drops_}; }

  void restoreState(const SavedState& s) {
    ticks_ = s.ticks;
    drops_ = s.drops;
  }

 private:
  std::uint64_t ticks_ = 0;
  std::uint64_t drops_ = 0;
};
