// detlint selftest fixture: contains real violations, every one of
// which carries a justified allow() — the file must report findings,
// but zero UNSUPPRESSED findings. Exercises same-line and
// preceding-line suppression placement and multi-check allows.
// This TU is never compiled by the main build.

#include <unordered_map>

struct Telemetry {
  // Same-line suppression on a member declaration.
  std::unordered_map<int, double> cache_;  // detlint: allow(unordered-state) point queries only; never iterated, ordering cannot escape

  double total() const {
    double acc = 0.0;
    // Preceding-line suppression covering the next code line.
    // detlint: allow(unordered-iter) summed into a commutative total; order-insensitive by construction
    for (const auto& kv : cache_) {
      acc += kv.second;
    }
    return acc;
  }

  double first() const {
    return cache_.begin()->second;  // detlint: allow(unordered-iter) diagnostics-only path, value never reaches committed state
  }
};
